//! The cycle-stepped out-of-order core timing model.
//!
//! Functional state advances on the correct path at fetch
//! ("execute-at-fetch"); timing is modelled with an analytically scheduled
//! dataflow pipeline:
//!
//! * **fetch/dispatch** — up to `fetch_width` instructions per cycle follow
//!   the actual path, consulting the branch predictor at every branch; a
//!   misprediction stalls fetch until the branch's writeback plus a
//!   redirect penalty (wrong-path instructions are not simulated — their
//!   *timing* cost is the stall, their side effects are out of scope);
//! * **issue** — each instruction's issue time is the max of its operands'
//!   completion times, serialized through bounded issue/memory ports;
//!   non-memory latencies are fixed per class, loads ask the memory
//!   hierarchy *at their issue cycle* so in-flight prefetches are seen with
//!   correct timing;
//! * **commit** — in order, `commit_width` per cycle, bounded by the
//!   192-entry ROB; commit trains the branch predictor, the confidence
//!   estimators, the BrTC and the MHT, exactly as Section IV prescribes.

use crate::config::{PredictorKind, PrefetcherKind, SimConfig};
use crate::ports::PortRing;
use bfetch_bpred::{
    Btb, CompositeConfidence, ConfidenceConfig, DirectionPredictor, HistoryRegister,
    PerceptronPredictor, TournamentConfig, TournamentPredictor,
};
use bfetch_core::{BFetchEngine, DecodedBranch};
use bfetch_isa::{ArchState, OpClass, Program};
use bfetch_mem::{AccessKind, HitLevel, MemStats, MemoryInterface};
use bfetch_prefetch::{AccessEvent, Isb, NextN, PrefetchRequest, Prefetcher, Sms, Stride};
use bfetch_stats::cpi::{CpiComponent, CpiConfig, CpiStack, TimelineSample};
use bfetch_stats::trace::{TraceKind, Tracer};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

const PORT_HORIZON: u64 = 1 << 14;

#[derive(Debug)]
struct InFlight {
    seq: u64,
    pc: u64,
    dispatch_at: u64,
    ready_at: u64,
    unresolved: u8,
    scheduled: bool,
    complete_at: u64,
    waiters: Vec<u64>,
    dest: Option<u8>,
    dest_val: u64,
    // branch fields
    is_branch: bool,
    is_cond: bool,
    taken: bool,
    pred_taken: bool,
    pred_strength: u8,
    ghr_before: u64,
    taken_target: u64,
    fallthrough: u64,
    // memory fields
    is_load: bool,
    is_store: bool,
    ea: u64,
    base_reg: u8,
    regs_snapshot: Option<Box<[u64; 32]>>,
    latency_class: LatClass,
    forwarded: bool,
    // cycle-accounting provenance (written on schedule; read only when the
    // entry stalls commit from the head of the ROB)
    port_delayed: bool,
    mem_service: HitLevel,
    mem_pf_covered: bool,
    mem_queued_until: u64,
}

/// The configuration fields the per-cycle loop consults, copied out of
/// [`SimConfig`] at construction: the core carries this small `Copy`
/// block instead of cloning the whole config for a handful of scalars.
#[derive(Debug, Clone, Copy)]
struct CoreParams {
    mul_latency: u64,
    commit_width: usize,
    arf_at_retire: bool,
    mispredict_penalty: u64,
    fetch_width: usize,
    rob_entries: usize,
    l1i_latency: u64,
    l1d_latency: u64,
    btb_miss_penalty: u64,
    store_forwarding: bool,
    prefetch_issue_per_cycle: usize,
}

impl CoreParams {
    fn of(cfg: &SimConfig) -> Self {
        Self {
            mul_latency: cfg.mul_latency,
            commit_width: cfg.commit_width,
            arf_at_retire: cfg.bfetch.arf_at_retire,
            mispredict_penalty: cfg.mispredict_penalty,
            fetch_width: cfg.fetch_width,
            rob_entries: cfg.rob_entries,
            l1i_latency: cfg.l1i.latency,
            l1d_latency: cfg.l1d.latency,
            btb_miss_penalty: cfg.btb_miss_penalty,
            store_forwarding: cfg.store_forwarding,
            prefetch_issue_per_cycle: cfg.prefetch_issue_per_cycle,
        }
    }
}

/// Per-core counters sampled by the run harness.
#[derive(Debug, Clone, Copy, Default)]
pub struct CoreCounters {
    /// Instructions committed.
    pub committed: u64,
    /// Conditional branches fetched.
    pub cond_branches: u64,
    /// Mispredicted conditional branches.
    pub mispredicts: u64,
    /// Histogram of branches fetched per active fetch cycle (index 0..=4).
    pub branch_fetch_hist: [u64; 5],
    /// Times the workload ran to completion and was restarted.
    pub restarts: u64,
    /// Demand-prefetcher requests dropped on queue overflow.
    pub pf_queue_overflow: u64,
    /// Loads satisfied by store-to-load forwarding (forwarding mode only).
    pub forwarded_loads: u64,
}

/// Why fetch is currently stalled (`fetch_stall_until` in the future).
/// Only consulted by the cycle accounting; updated whenever a stall site
/// raises `fetch_stall_until`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FetchStallReason {
    /// Post-resolution redirect after a mispredicted branch.
    Redirect,
    /// L1I miss blocking instruction supply.
    ICache,
    /// Decode redirect for a predicted-taken branch absent from the BTB.
    Btb,
}

/// CPI-stack state carried by a core while accounting is enabled: the
/// cumulative stack plus the interval sampler's bookkeeping.
#[derive(Debug)]
struct CpiAccounting {
    stack: CpiStack,
    /// Committed instructions between samples (`0` disables the sampler).
    interval: u64,
    next_sample_at: u64,
    samples: Vec<TimelineSample>,
    // previous-sample snapshots for interval deltas
    last_stack: CpiStack,
    last_mem: MemStats,
    last_mispredicts: u64,
}

/// One simulated core: functional state, branch prediction, the optional
/// B-Fetch engine or demand prefetcher, and the out-of-order timing model.
pub struct Core {
    id: usize,
    program: Program,
    arch: ArchState,
    params: CoreParams,
    // prediction
    bp: Box<dyn DirectionPredictor>,
    ghr: HistoryRegister,
    btb: Btb,
    conf: CompositeConfidence,
    // prefetching
    engine: Option<BFetchEngine>,
    demand_pf: Option<Box<dyn Prefetcher>>,
    pf_queue: VecDeque<PrefetchRequest>,
    pf_scratch: Vec<PrefetchRequest>, // reusable per-access request buffer
    perfect: bool,
    // pipeline
    rob: VecDeque<InFlight>,
    // dense mirror of the in-flight stores, oldest first: `(seq, word)`
    // per store still in the ROB. The store-forward probe walks this short
    // 16-byte-stride deque youngest-first instead of `rposition` over the
    // full ROB of fat `InFlight` entries — same youngest-older-store
    // answer, a fraction of the cache traffic.
    store_q: VecDeque<(u64, u64)>,
    rob_base: u64,
    next_seq: u64,
    issue_ports: PortRing,
    mem_ports: PortRing,
    pending_mem: BinaryHeap<Reverse<(u64, u64)>>, // (issue cycle, seq)
    fetch_blocked_by: Option<u64>,
    fetch_stall_until: u64,
    fetch_stall_reason: FetchStallReason,
    cur_iline: u64,
    writers: [Option<u64>; 32],
    counters: CoreCounters,
    tracer: Tracer,
    cpi: Option<Box<CpiAccounting>>,
    // allocation recycling for the per-instruction hot path: retired
    // waiter lists and branch register snapshots go back into these pools
    // instead of the allocator (bounded, so a pathological phase cannot
    // hoard memory)
    waiter_pool: Vec<Vec<u64>>,
    // Vec<Box<..>> is the point: the pool recycles the *boxes*, so a pop
    // hands back an existing allocation instead of re-boxing 256 bytes
    #[allow(clippy::vec_box)]
    snap_pool: Vec<Box<[u64; 32]>>,
}

impl std::fmt::Debug for Core {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Core")
            .field("id", &self.id)
            .field("program", &self.program.name())
            .field("committed", &self.counters.committed)
            .finish_non_exhaustive()
    }
}

impl Core {
    /// Builds a core running `program` under `cfg`.
    pub fn new(id: usize, program: Program, cfg: &SimConfig) -> Self {
        let arch = ArchState::new(&program);
        let bp: Box<dyn DirectionPredictor> = match cfg.predictor {
            PredictorKind::Tournament => Box::new(TournamentPredictor::new(
                TournamentConfig::scaled(cfg.bpred_scale),
            )),
            PredictorKind::Perceptron => Box::new(PerceptronPredictor::baseline()),
        };
        let conf = CompositeConfidence::new(ConfidenceConfig::baseline());
        let (engine, demand_pf, perfect): (
            Option<BFetchEngine>,
            Option<Box<dyn Prefetcher>>,
            bool,
        ) = match cfg.prefetcher {
            PrefetcherKind::None => (None, None, false),
            PrefetcherKind::BFetch => (Some(BFetchEngine::new(cfg.bfetch)), None, false),
            PrefetcherKind::NextN(n) => (None, Some(Box::new(NextN::new(n))), false),
            PrefetcherKind::Stride => (None, Some(Box::new(Stride::new(cfg.stride))), false),
            PrefetcherKind::Sms => (None, Some(Box::new(Sms::new(cfg.sms))), false),
            PrefetcherKind::Isb => (None, Some(Box::new(Isb::baseline())), false),
            PrefetcherKind::Perfect => (None, None, true),
        };
        Self {
            id,
            arch,
            program,
            bp,
            ghr: HistoryRegister::new(),
            btb: Btb::new(512, 4),
            conf,
            engine,
            demand_pf,
            pf_queue: VecDeque::new(),
            pf_scratch: Vec::new(),
            perfect,
            rob: VecDeque::with_capacity(cfg.rob_entries),
            store_q: VecDeque::new(),
            rob_base: 0,
            next_seq: 0,
            issue_ports: PortRing::new(cfg.issue_width, PORT_HORIZON),
            mem_ports: PortRing::new(cfg.mem_ports, PORT_HORIZON),
            pending_mem: BinaryHeap::new(),
            fetch_blocked_by: None,
            fetch_stall_until: 0,
            fetch_stall_reason: FetchStallReason::Redirect,
            cur_iline: u64::MAX,
            writers: [None; 32],
            counters: CoreCounters::default(),
            tracer: Tracer::disabled(),
            cpi: None,
            waiter_pool: Vec::new(),
            snap_pool: Vec::new(),
            params: CoreParams::of(cfg),
        }
    }

    /// Installs a trace handle; the core stamps its own id on branch events
    /// and forwards a pre-stamped clone to the B-Fetch engine.
    pub fn set_tracer(&mut self, tracer: &Tracer) {
        self.tracer = tracer.for_core(self.id as u32);
        if let Some(engine) = self.engine.as_mut() {
            engine.set_tracer(self.tracer.clone());
        }
    }

    /// This core's id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The workload's name.
    pub fn program_name(&self) -> &str {
        self.program.name()
    }

    /// Sampled counters.
    pub fn counters(&self) -> &CoreCounters {
        &self.counters
    }

    /// Branch predictor `(lookups, mispredicts)`.
    pub fn bp_stats(&self) -> (u64, u64) {
        self.bp.stats()
    }

    /// The B-Fetch engine, when configured.
    pub fn engine(&self) -> Option<&BFetchEngine> {
        self.engine.as_ref()
    }

    /// Off-chip prefetcher meta-data traffic generated so far, in bytes.
    pub fn pf_metadata_bytes(&self) -> u64 {
        self.demand_pf
            .as_ref()
            .map_or(0, |p| p.metadata_traffic_bytes())
    }

    /// Captures this core's machine state for a watchdog abort report:
    /// where the pipeline is wedged (ROB head, prefetch queues, MSHRs,
    /// frontend stall), cheap enough to take once per abort.
    pub fn diag<M: MemoryInterface>(&self, mem: &M) -> crate::error::CoreDiag {
        crate::error::CoreDiag {
            core: self.id,
            committed: self.counters.committed,
            rob_len: self.rob.len(),
            rob_head: self.rob.front().map(|h| crate::error::RobHeadDiag {
                seq: h.seq,
                pc: h.pc,
                scheduled: h.scheduled,
                complete_at: h.complete_at,
            }),
            pf_queue_len: self.pf_queue.len(),
            engine_queue_len: self.engine.as_ref().map(|e| e.queue_len()),
            mshr_live: mem.mshr_live(self.id),
            pf_mshr_live: mem.pf_mshr_live(self.id),
            fetch_stall_until: self.fetch_stall_until,
        }
    }

    /// Routes L1D prefetch-usefulness feedback into the per-load filter.
    pub fn feedback(&mut self, pc_hash: u16, useful: bool) {
        if let Some(e) = self.engine.as_mut() {
            e.on_feedback(pc_hash, useful);
        }
    }

    /// Switches on CPI-stack accounting (and, with a nonzero
    /// `timeline_interval`, the interval sampler) from the *next* cycle on.
    /// Called by the run harness right after warmup so the stack covers
    /// exactly the measurement window. `mem` seeds the sampler's
    /// interval-delta baselines.
    pub fn enable_cpi<M: MemoryInterface>(&mut self, cfg: &CpiConfig, mem: &M) {
        if !cfg.enabled {
            return;
        }
        let width = self.params.commit_width as u64;
        self.cpi = Some(Box::new(CpiAccounting {
            stack: CpiStack::new(width),
            interval: cfg.timeline_interval,
            next_sample_at: cfg.timeline_interval.max(1),
            samples: Vec::new(),
            last_stack: CpiStack::new(width),
            last_mem: *mem.stats(self.id),
            last_mispredicts: self.counters.mispredicts,
        }));
    }

    /// The accumulated CPI stack, when accounting is enabled.
    pub fn cpi_stack(&self) -> Option<&CpiStack> {
        self.cpi.as_ref().map(|c| &c.stack)
    }

    /// Drains the timeline samples collected so far.
    pub fn take_timeline(&mut self) -> Vec<TimelineSample> {
        self.cpi
            .as_mut()
            .map(|c| std::mem::take(&mut c.samples))
            .unwrap_or_default()
    }

    #[inline]
    fn entry(&mut self, seq: u64) -> Option<&mut InFlight> {
        let base = self.rob_base;
        if seq < base {
            return None;
        }
        self.rob.get_mut((seq - base) as usize)
    }

    /// Advances this core by one cycle.
    pub fn cycle<M: MemoryInterface>(&mut self, now: u64, mem: &mut M) {
        if now & 1023 == 0 {
            self.issue_ports.release_before(now, 1024);
            self.mem_ports.release_before(now, 1024);
        }
        {
            let _p = bfetch_prof::span(bfetch_prof::SIM_PENDING_MEM);
            self.process_pending_mem(now, mem);
        }
        self.check_fetch_block(now);
        // accounting classifies against pre-fetch state: the ROB snapshot
        // right after commit still shows *why* commit fell short
        let rob_was_full = self.cpi.is_some() && self.rob.len() >= self.params.rob_entries;
        {
            let _p = bfetch_prof::span(bfetch_prof::SIM_COMMIT);
            let committed = self.commit(now);
            if self.cpi.is_some() {
                self.account_cycle(now, committed, rob_was_full, mem);
            }
        }
        {
            let _p = bfetch_prof::span(bfetch_prof::SIM_FETCH);
            self.fetch(now, mem);
        }
        self.prefetch_tick(now, mem);
    }

    // ---- cycle accounting ------------------------------------------------

    /// Charges this cycle's lost commit slots to one root cause and runs
    /// the interval sampler. Only called while accounting is enabled; with
    /// `cpi == None` the cycle loop pays a single branch, keeping disabled
    /// runs on the pre-accounting hot path.
    fn account_cycle<M: MemoryInterface>(&mut self, now: u64, committed: usize, rob_was_full: bool, mem: &M) {
        let cause = if committed < self.params.commit_width {
            self.classify_stall(now, rob_was_full)
        } else {
            CpiComponent::Base // no lost slots: the cause is never recorded
        };
        let id = self.id;
        let mispredicts = self.counters.mispredicts;
        let Some(acc) = self.cpi.as_mut() else { return };
        acc.stack.account_cycle(committed as u64, cause);
        if acc.interval == 0 {
            return;
        }
        while acc.stack.committed_slots >= acc.next_sample_at {
            let interval = acc.stack.delta(&acc.last_stack);
            let mem_now = *mem.stats(id);
            let mem_d = mem_now.delta(&acc.last_mem);
            acc.samples.push(TimelineSample {
                core: id as u32,
                index: acc.samples.len() as u32,
                cycle: acc.stack.cycles,
                instructions: acc.stack.committed_slots,
                interval_cycles: interval.cycles,
                interval_instructions: interval.committed_slots,
                interval_mispredicts: mispredicts - acc.last_mispredicts,
                interval_l1d_misses: mem_d.l1d_misses,
                interval_pf_useful: mem_d.prefetch_useful,
                interval_pf_useless: mem_d.prefetch_useless,
                interval_pf_late: mem_d.prefetch_late,
                lost: interval.lost,
            });
            acc.last_stack = acc.stack;
            acc.last_mem = mem_now;
            acc.last_mispredicts = mispredicts;
            acc.next_sample_at += acc.interval;
        }
    }

    /// Picks the single root cause for a cycle whose commit fell short of
    /// the machine width. The decision tree leans on in-order commit: the
    /// ROB head's operands are strictly older and already committed, so the
    /// head is never waiting on a dependence — it is either queued for a
    /// port, executing, or waiting on memory.
    fn classify_stall(&self, now: u64, rob_was_full: bool) -> CpiComponent {
        let Some(head) = self.rob.front() else {
            // empty window: the frontend is not supplying instructions
            if self.fetch_blocked_by.is_some() {
                return CpiComponent::Mispredict;
            }
            if now < self.fetch_stall_until {
                return match self.fetch_stall_reason {
                    FetchStallReason::Redirect => CpiComponent::Mispredict,
                    FetchStallReason::ICache | FetchStallReason::Btb => CpiComponent::FetchStall,
                };
            }
            // pipeline refill: fetch runs this cycle, commit sees it later
            return CpiComponent::FetchStall;
        };
        if head.is_load && !head.forwarded {
            if !head.scheduled {
                // still queued for a memory port (or, rarely, just
                // dispatched): structural only if the port ring pushed it
                // past its ready time
                return if head.port_delayed {
                    CpiComponent::LsqFull
                } else {
                    CpiComponent::Base
                };
            }
            if head.mem_service != HitLevel::L1 {
                if now < head.mem_queued_until {
                    return CpiComponent::MshrFull;
                }
                return match (head.mem_service, head.mem_pf_covered) {
                    (HitLevel::L2, false) => CpiComponent::MemL2,
                    (HitLevel::L2, true) => CpiComponent::MemL2Covered,
                    (HitLevel::L3, false) => CpiComponent::MemL3,
                    (HitLevel::L3, true) => CpiComponent::MemL3Covered,
                    (_, false) => CpiComponent::MemDram,
                    (_, true) => CpiComponent::MemDramCovered,
                };
            }
            // L1-hit latency: plain pipeline depth, falls through to base
        }
        if head.is_store && head.port_delayed && head.complete_at > now {
            return CpiComponent::LsqFull;
        }
        if rob_was_full {
            CpiComponent::RobFull
        } else {
            CpiComponent::Base
        }
    }

    // ---- scheduling ------------------------------------------------------

    fn try_schedule(&mut self, seq: u64, _now: u64) {
        let cfg_mul = self.params.mul_latency;
        let Some(e) = self.entry(seq) else { return };
        if e.scheduled || e.unresolved > 0 {
            return;
        }
        if e.is_load || e.is_store {
            if e.complete_at == u64::MAX {
                let earliest = e.ready_at.max(e.dispatch_at + 1);
                let is_store = e.is_store;
                let t = self.mem_ports.reserve(earliest);
                let e = self.entry(seq).expect("entry exists");
                e.port_delayed = t > earliest;
                if is_store {
                    // stores drain through the store buffer: dependents (and
                    // commit) see them complete right after address issue
                    e.scheduled = true;
                    e.complete_at = t + 1;
                }
                self.pending_mem.push(Reverse((t, seq)));
                if is_store {
                    self.on_scheduled(seq);
                }
            }
            return;
        }
        let earliest = e.ready_at.max(e.dispatch_at + 1);
        let latency = match e.latency_class {
            LatClass::Mul => cfg_mul,
            _ => 1,
        };
        let t = self.issue_ports.reserve(earliest);
        let e = self.entry(seq).expect("entry exists");
        e.scheduled = true;
        e.complete_at = t + latency;
        self.on_scheduled(seq);
    }

    /// Propagates a newly known completion time to dependents. Recursion
    /// happens through [`Core::try_schedule`], whose depth is bounded by
    /// the dependence chains inside the ROB window; each waiter list is
    /// taken exactly once, so no work queue (or its allocation) is needed.
    fn on_scheduled(&mut self, seq: u64) {
        let (complete, mut waiters, dest, val) = {
            let Some(e) = self.entry(seq) else { return };
            debug_assert!(e.scheduled);
            (e.complete_at, std::mem::take(&mut e.waiters), e.dest, e.dest_val)
        };
        // post the register value toward the B-Fetch ARF
        if !self.params.arf_at_retire {
            if let (Some(d), Some(engine)) = (dest, self.engine.as_mut()) {
                engine.post_regwrite(d as usize, val, seq, complete);
            }
        }
        for &w in &waiters {
            let mut now_ready = false;
            if let Some(we) = self.entry(w) {
                we.ready_at = we.ready_at.max(complete);
                we.unresolved -= 1;
                now_ready = we.unresolved == 0;
            }
            if now_ready {
                self.try_schedule(w, complete);
            }
        }
        if waiters.capacity() > 0 && self.waiter_pool.len() < 256 {
            waiters.clear();
            self.waiter_pool.push(waiters);
        }
    }

    fn process_pending_mem<M: MemoryInterface>(&mut self, now: u64, mem: &mut M) {
        while let Some(&Reverse((t, seq))) = self.pending_mem.peek() {
            if t > now {
                break;
            }
            self.pending_mem.pop();
            let Some(e) = self.entry(seq) else { continue };
            let (is_load, ea, pc, forwarded) = (e.is_load, e.ea, e.pc, e.forwarded);
            if is_load {
                let (complete, service, pf_covered, queued_until) = if forwarded {
                    (now + 1, HitLevel::L1, false, 0)
                } else if self.perfect {
                    (now + self.params.l1d_latency, HitLevel::L1, false, 0)
                } else {
                    let out = mem.access(self.id, AccessKind::Load, ea, now);
                    self.observe_access(pc, ea, out.level == HitLevel::L1, true);
                    (out.complete_at, out.service, out.pf_covered, out.queued_until)
                };
                let e = self.entry(seq).expect("entry exists");
                e.scheduled = true;
                e.complete_at = complete.max(now + 1);
                e.mem_service = service;
                e.mem_pf_covered = pf_covered;
                e.mem_queued_until = queued_until;
                self.on_scheduled(seq);
            } else if !self.perfect {
                let out = mem.access(self.id, AccessKind::Store, ea, now);
                self.observe_access(pc, ea, out.level == HitLevel::L1, false);
            }
        }
    }

    fn observe_access(&mut self, pc: u64, addr: u64, hit: bool, is_load: bool) {
        if let Some(pf) = self.demand_pf.as_mut() {
            let ev = AccessEvent {
                pc,
                addr,
                hit,
                is_load,
            };
            self.pf_scratch.clear();
            pf.on_access(&ev, &mut self.pf_scratch);
            for i in 0..self.pf_scratch.len() {
                let r = self.pf_scratch[i];
                if self.pf_queue.len() >= 100 {
                    self.counters.pf_queue_overflow += 1;
                } else {
                    self.pf_queue.push_back(r);
                }
            }
        }
    }

    // ---- commit ----------------------------------------------------------

    /// Retires up to `commit_width` finished instructions in order and
    /// returns how many committed (the cycle accounting charges the
    /// remaining slots).
    fn commit(&mut self, now: u64) -> usize {
        let mut committed = 0;
        for _ in 0..self.params.commit_width {
            let Some(front) = self.rob.front() else { break };
            if !front.scheduled || front.complete_at > now {
                break;
            }
            committed += 1;
            let mut fi = self.rob.pop_front().expect("front exists");
            if fi.is_store {
                let popped = self.store_q.pop_front();
                debug_assert_eq!(popped, Some((fi.seq, fi.ea & !7)));
            }
            self.rob_base += 1;
            self.counters.committed += 1;
            if self.params.arf_at_retire {
                if let (Some(d), Some(engine)) = (fi.dest, self.engine.as_mut()) {
                    engine.post_regwrite(d as usize, fi.dest_val, fi.seq, now);
                }
            }
            if fi.is_branch {
                if fi.is_cond {
                    self.bp.update(fi.pc, fi.ghr_before, fi.taken);
                    self.conf.train(
                        fi.pc,
                        fi.ghr_before,
                        fi.pred_strength,
                        fi.pred_taken == fi.taken,
                    );
                    self.tracer.emit(
                        now,
                        TraceKind::BranchResolved {
                            pc: fi.pc,
                            taken: fi.taken,
                            mispredicted: fi.pred_taken != fi.taken,
                        },
                    );
                }
                if fi.taken {
                    self.btb.install(fi.pc, fi.taken_target);
                }
                if let (Some(engine), Some(snap)) = (self.engine.as_mut(), fi.regs_snapshot.take()) {
                    engine.on_commit_branch(
                        fi.pc,
                        fi.is_cond,
                        fi.taken,
                        fi.taken_target,
                        fi.fallthrough,
                        &snap,
                    );
                    if self.snap_pool.len() < 192 {
                        self.snap_pool.push(snap);
                    }
                }
            } else if fi.is_load {
                if let Some(engine) = self.engine.as_mut() {
                    engine.on_commit_load(fi.pc, fi.base_reg, fi.ea);
                }
            }
        }
        committed
    }

    // ---- fetch -----------------------------------------------------------

    fn check_fetch_block(&mut self, _now: u64) {
        if let Some(bseq) = self.fetch_blocked_by {
            let penalty = self.params.mispredict_penalty;
            let resolved = match self.entry(bseq) {
                Some(e) if e.scheduled => Some(e.complete_at),
                None => Some(0), // already retired: resolved long ago
                _ => None,
            };
            if let Some(c) = resolved {
                if c + penalty > self.fetch_stall_until {
                    self.fetch_stall_until = c + penalty;
                    self.fetch_stall_reason = FetchStallReason::Redirect;
                }
                self.fetch_blocked_by = None;
            }
        }
    }

    fn fetch<M: MemoryInterface>(&mut self, now: u64, mem: &mut M) {
        if self.fetch_blocked_by.is_some() || now < self.fetch_stall_until {
            return;
        }
        let mut branches_this_cycle = 0usize;
        let l1i_lat = self.params.l1i_latency;
        for _ in 0..self.params.fetch_width {
            if self.rob.len() >= self.params.rob_entries {
                break;
            }
            if self.arch.halted() {
                self.counters.restarts += 1;
                self.arch.restart();
            }
            let idx = self.arch.pc();
            let pc = self.program.pc_addr(idx);
            let line = pc & !63;
            if line != self.cur_iline {
                let out = mem.access(self.id, AccessKind::InstFetch, pc, now);
                self.cur_iline = line;
                if out.complete_at > now + l1i_lat {
                    self.fetch_stall_until = out.complete_at;
                    self.fetch_stall_reason = FetchStallReason::ICache;
                    break;
                }
            }
            let Some(info) = self.arch.step(&self.program) else {
                break;
            };
            let inst = info.inst;
            let seq = self.next_seq;
            self.next_seq += 1;

            let mut fi = InFlight {
                seq,
                pc,
                dispatch_at: now,
                ready_at: now,
                unresolved: 0,
                scheduled: false,
                complete_at: u64::MAX,
                waiters: self.waiter_pool.pop().unwrap_or_default(),
                dest: inst.dst().map(|r| r.index() as u8),
                dest_val: inst.dst().map_or(0, |r| self.arch.reg(r)),
                is_branch: inst.is_branch(),
                is_cond: inst.is_cond_branch(),
                taken: info.taken,
                pred_taken: true,
                pred_strength: 3,
                ghr_before: self.ghr.bits(),
                taken_target: inst.branch_target().map_or(0, |t| self.program.pc_addr(t)),
                fallthrough: self.program.pc_addr(idx + 1),
                is_load: matches!(inst.class(), OpClass::Load),
                is_store: matches!(inst.class(), OpClass::Store),
                ea: info.ea.unwrap_or(0),
                base_reg: inst.mem_info().map_or(0, |m| m.base.index() as u8),
                regs_snapshot: None,
                forwarded: false,
                latency_class: match inst.class() {
                    OpClass::IntMul => LatClass::Mul,
                    _ => LatClass::Simple,
                },
                port_delayed: false,
                mem_service: HitLevel::L1,
                mem_pf_covered: false,
                mem_queued_until: 0,
            };

            let mut mispredicted = false;
            if fi.is_branch {
                branches_this_cycle += 1;
                let ghr_before = fi.ghr_before;
                if fi.is_cond {
                    self.counters.cond_branches += 1;
                    let p = self.bp.predict(pc, ghr_before);
                    fi.pred_taken = p.taken;
                    fi.pred_strength = p.strength;
                    self.ghr.push(info.taken);
                    mispredicted = p.taken != info.taken;
                    if mispredicted {
                        self.counters.mispredicts += 1;
                    }
                }
                // taken branches whose target is not in the BTB pay a small
                // decode-redirect penalty
                if fi.pred_taken && self.btb.lookup(pc).is_none() {
                    let until = now + self.params.btb_miss_penalty;
                    if until > self.fetch_stall_until {
                        self.fetch_stall_until = until;
                        self.fetch_stall_reason = FetchStallReason::Btb;
                    }
                }
                // the snapshot feeds the engine's MHT training at commit;
                // without an engine nothing reads it, so skip the copy
                if self.engine.is_some() {
                    let mut snap = self
                        .snap_pool
                        .pop()
                        .unwrap_or_else(|| Box::new([0u64; 32]));
                    *snap = *self.arch.regs();
                    fi.regs_snapshot = Some(snap);
                }
                let confidence = self.conf.estimate(pc, ghr_before, fi.pred_strength);
                if fi.is_cond {
                    self.tracer.emit(
                        now,
                        TraceKind::BranchPredicted {
                            pc,
                            taken: fi.pred_taken,
                            confidence,
                        },
                    );
                }
                if let Some(engine) = self.engine.as_mut() {
                    engine.on_branch_decoded(DecodedBranch {
                        pc,
                        predicted_taken: fi.pred_taken,
                        taken_target: fi.taken_target,
                        fallthrough: fi.fallthrough,
                        is_cond: fi.is_cond,
                        ghr_before,
                        confidence,
                    });
                }
            }

            // store-to-load forwarding: a load whose word is written by an
            // older in-flight store takes the data from the store queue
            // (1-cycle forward after the store executes) instead of the
            // cache
            if self.params.store_forwarding && fi.is_load {
                let word = fi.ea & !7;
                if let Some(pseq) = self
                    .store_q
                    .iter()
                    .rev()
                    .find(|&&(_, w)| w == word)
                    .map(|&(s, _)| s)
                {
                    let mut wait = false;
                    if let Some(pe) = self.entry(pseq) {
                        if pe.scheduled {
                            let c = pe.complete_at;
                            fi.ready_at = fi.ready_at.max(c);
                        } else {
                            pe.waiters.push(seq);
                            wait = true;
                        }
                    }
                    if wait {
                        fi.unresolved += 1;
                    }
                    fi.forwarded = true;
                    self.counters.forwarded_loads += 1;
                }
            }

            // dependency wiring
            for src in inst.srcs().into_iter().flatten() {
                if src.is_zero() {
                    continue;
                }
                if let Some(pseq) = self.last_writer(src.index()) {
                    let mut wait = false;
                    if let Some(pe) = self.entry(pseq) {
                        if pe.scheduled {
                            let c = pe.complete_at;
                            let r = &mut fi.ready_at;
                            *r = (*r).max(c);
                        } else {
                            pe.waiters.push(seq);
                            wait = true;
                        }
                    }
                    if wait {
                        fi.unresolved += 1;
                    }
                }
            }
            if let Some(d) = fi.dest {
                self.writers[d as usize] = Some(seq);
            }

            if fi.is_store {
                self.store_q.push_back((seq, fi.ea & !7));
            }
            self.rob.push_back(fi);
            self.try_schedule(seq, now);

            if mispredicted {
                self.fetch_blocked_by = Some(seq);
                break;
            }
            if info.halted {
                break;
            }
            if now < self.fetch_stall_until {
                break;
            }
        }
        self.counters.branch_fetch_hist[branches_this_cycle.min(4)] += 1;
    }

    fn last_writer(&self, reg: usize) -> Option<u64> {
        self.writers[reg]
    }

    // ---- prefetch issue ----------------------------------------------------

    fn prefetch_tick<M: MemoryInterface>(&mut self, now: u64, mem: &mut M) {
        let per_cycle = self.params.prefetch_issue_per_cycle;
        if let Some(engine) = self.engine.as_mut() {
            {
                let _p = bfetch_prof::span(bfetch_prof::SIM_ENGINE);
                engine.tick(now, self.bp.as_ref(), &self.conf);
            }
            let _p = bfetch_prof::span(bfetch_prof::SIM_ISSUE);
            for c in engine.pop_prefetches(per_cycle) {
                mem.prefetch(self.id, c.addr, c.pc_hash, now);
            }
            for addr in engine.pop_inst_prefetches(per_cycle) {
                mem.prefetch_inst(self.id, addr, now);
            }
        } else if self.demand_pf.is_some() {
            let _p = bfetch_prof::span(bfetch_prof::SIM_ISSUE);
            for _ in 0..per_cycle {
                let Some(r) = self.pf_queue.pop_front() else {
                    break;
                };
                mem.prefetch(self.id, r.addr, r.pc_hash & 0x3ff, now);
            }
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LatClass {
    Simple,
    Mul,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::SimSession;
    use bfetch_isa::{ProgramBuilder, Reg};

    fn quick(cfg: &SimConfig, p: &Program, insts: u64) -> crate::cmp::RunResult {
        let mut c = cfg.clone();
        c.warmup_insts = 2_000;
        SimSession::new(c)
            .instructions(insts)
            .run_one(p)
            .unwrap_or_else(|e| panic!("{e}"))
            .into_single()
    }

    /// An L1-resident ALU loop: IPC approaches (but never exceeds) the
    /// machine width.
    #[test]
    fn alu_loop_is_issue_bound() {
        let mut b = ProgramBuilder::new("alu-loop");
        b.li(Reg::R1, 0);
        b.li(Reg::R2, 1_000_000);
        let top = b.label();
        b.bind(top);
        // independent ALU ops to fill the issue ports
        b.add(Reg::R3, Reg::R1, Reg::R2);
        b.add(Reg::R4, Reg::R1, Reg::R2);
        b.add(Reg::R5, Reg::R1, Reg::R2);
        b.addi(Reg::R1, Reg::R1, 1);
        b.blt(Reg::R1, Reg::R2, top);
        let p = b.finish();
        let r = quick(&SimConfig::baseline(), &p, 20_000);
        assert!(
            r.ipc() > 2.0,
            "independent ALU loop should near width: {}",
            r.ipc()
        );
        assert!(r.ipc() <= 4.0);
    }

    /// A hard-to-predict branch costs cycles relative to a predictable one.
    #[test]
    fn mispredictions_cost_cycles() {
        let build = |name: &str, mask: i64| {
            let mut b = ProgramBuilder::new(name);
            b.li(Reg::R1, 0x9e3779b9);
            b.li(Reg::R2, 0);
            b.li(Reg::R3, 1_000_000);
            b.li(Reg::R4, mask);
            b.li(Reg::R7, 6364136223846793005);
            let top = b.label();
            let skip = b.label();
            b.bind(top);
            b.mul(Reg::R1, Reg::R1, Reg::R7);
            b.addi(Reg::R1, Reg::R1, 0x1234567);
            b.srli(Reg::R5, Reg::R1, 33);
            b.and(Reg::R5, Reg::R5, Reg::R4);
            b.beq(Reg::R5, Reg::R0, skip);
            b.xor(Reg::R6, Reg::R6, Reg::R1);
            b.bind(skip);
            b.addi(Reg::R2, Reg::R2, 1);
            b.blt(Reg::R2, Reg::R3, top);
            b.finish()
        };
        let predictable = quick(&SimConfig::baseline(), &build("pred", 0), 20_000);
        let random = quick(&SimConfig::baseline(), &build("rand", 1), 20_000);
        assert!(random.bp_miss_rate() > 0.2, "mask 1 is a coin flip");
        assert!(predictable.bp_miss_rate() < 0.02);
        assert!(
            random.ipc() < predictable.ipc() * 0.9,
            "mispredicts must cost: {} vs {}",
            random.ipc(),
            predictable.ipc()
        );
    }

    /// A dependent multiply chain runs at ~1/mul_latency IPC.
    #[test]
    fn dependent_mul_chain_is_latency_bound() {
        let mut b = ProgramBuilder::new("mul-chain");
        b.li(Reg::R1, 3);
        b.li(Reg::R2, 0);
        b.li(Reg::R3, 1_000_000);
        let top = b.label();
        b.bind(top);
        for _ in 0..8 {
            b.mul(Reg::R1, Reg::R1, Reg::R1);
        }
        b.addi(Reg::R2, Reg::R2, 1);
        b.blt(Reg::R2, Reg::R3, top);
        let p = b.finish();
        let r = quick(&SimConfig::baseline(), &p, 20_000);
        // 11 insts per iteration, 8 serial muls of 3 cycles => >= 24 cycles
        let ipc = r.ipc();
        assert!(ipc < 0.6, "serial multiply chain too fast: {ipc}");
    }

    /// Wider machines retire an ILP-rich loop faster.
    #[test]
    fn width_scales_ilp_rich_code() {
        let mut b = ProgramBuilder::new("ilp");
        b.li(Reg::R1, 0);
        b.li(Reg::R2, 1_000_000);
        let top = b.label();
        b.bind(top);
        for i in 3..11u8 {
            let r = Reg::from_index(i as usize).unwrap();
            b.addi(r, Reg::R1, i as i64);
        }
        b.addi(Reg::R1, Reg::R1, 1);
        b.blt(Reg::R1, Reg::R2, top);
        let p = b.finish();
        let narrow = quick(&SimConfig::baseline().with_width(2), &p, 20_000);
        let wide = quick(&SimConfig::baseline().with_width(8), &p, 20_000);
        assert!(
            wide.ipc() > narrow.ipc() * 1.5,
            "8-wide {} vs 2-wide {}",
            wide.ipc(),
            narrow.ipc()
        );
    }

    /// Store-to-load forwarding turns store/reload pairs into 1-cycle
    /// forwards and is visible in both the counter and the cycle count.
    #[test]
    fn store_forwarding_accelerates_reload_pairs() {
        let mut b = ProgramBuilder::new("spill");
        b.li(Reg::R1, 0x100_0000);
        b.li(Reg::R2, 0);
        b.li(Reg::R3, 1_000_000);
        let top = b.label();
        b.bind(top);
        // spill/reload to a hot stack slot, dependent chain through memory
        b.store(Reg::R2, Reg::R1, 0);
        b.load(Reg::R4, Reg::R1, 0);
        b.add(Reg::R2, Reg::R4, Reg::R3);
        b.addi(Reg::R2, Reg::R2, 1);
        b.blt(Reg::R2, Reg::R3, top);
        let p = b.finish();
        let off = quick(&SimConfig::baseline(), &p, 20_000);
        let mut cfg = SimConfig::baseline();
        cfg.store_forwarding = true;
        let on = quick(&cfg, &p, 20_000);
        assert!(on.ipc() >= off.ipc(), "{} vs {}", on.ipc(), off.ipc());
    }

    /// Writeback modelling surfaces DRAM writeback traffic for a
    /// store-streaming kernel and none without stores.
    #[test]
    fn writebacks_counted_for_dirty_streams() {
        let mut b = ProgramBuilder::new("wb");
        b.li(Reg::R1, 0x100_0000);
        b.li(Reg::R2, 0x400_0000);
        let top = b.label();
        b.bind(top);
        b.store(Reg::R5, Reg::R1, 0);
        b.addi(Reg::R1, Reg::R1, 64);
        b.blt(Reg::R1, Reg::R2, top);
        let p = b.finish();
        let mut cfg = SimConfig::baseline();
        cfg.model_writebacks = true;
        // tiny caches: the bandwidth-throttled fill stream must overflow
        // all three levels within the measurement window
        cfg.l1d = bfetch_mem::CacheConfig::new(2 * 1024, 2, 2);
        cfg.l2 = bfetch_mem::CacheConfig::new(4 * 1024, 2, 10);
        cfg.l3_bytes_per_core = 4 * 1024;
        let r = quick(&cfg, &p, 60_000);
        assert!(r.mem.writebacks > 0, "{:?}", r.mem);
        let mut off = cfg.clone();
        off.model_writebacks = false;
        let r2 = quick(&off, &p, 20_000);
        assert_eq!(r2.mem.writebacks, 0);
    }

    /// Retire-time ARF updates still produce a functional engine.
    #[test]
    fn retire_arf_mode_runs() {
        let mut b = ProgramBuilder::new("stream");
        b.li(Reg::R1, 0x100_0000);
        b.li(Reg::R2, 0x120_0000);
        let top = b.label();
        b.bind(top);
        b.load(Reg::R4, Reg::R1, 0);
        b.addi(Reg::R1, Reg::R1, 64);
        b.blt(Reg::R1, Reg::R2, top);
        let p = b.finish();
        let mut cfg = SimConfig::baseline().with_prefetcher(PrefetcherKind::BFetch);
        cfg.bfetch.arf_at_retire = true;
        let r = quick(&cfg, &p, 20_000);
        assert!(r.mem.prefetch_issued > 0);
        assert!(r.ipc() > 0.05);
    }
}
