//! Event-based dynamic-energy estimation.
//!
//! The paper's motivation is energy: LLC growth "comes at an increasingly
//! high cost in terms of power/energy consumption", runahead "incurs a
//! huge cost in terms of energy", and heavy-weight prefetchers pay for
//! "energy consuming shuttling of large meta-data information on and off
//! chip". This module turns the simulator's event counts into first-order
//! dynamic-energy estimates so those comparisons can be made
//! quantitatively.
//!
//! The per-event constants are CACTI-style orders of magnitude for a
//! ~32 nm node (documented on [`EnergyParams`]); as with the timing model,
//! only *relative* comparisons between configurations are meaningful.

use crate::cmp::RunResult;

/// Per-event dynamic energy constants, in picojoules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyParams {
    /// Core front/backend energy per committed instruction.
    pub inst_pj: f64,
    /// L1 (I or D) access.
    pub l1_pj: f64,
    /// L2 access.
    pub l2_pj: f64,
    /// Shared L3 access.
    pub l3_pj: f64,
    /// DRAM line transfer (64 B).
    pub dram_line_pj: f64,
    /// Small SRAM table access per √KB of capacity (prefetcher structures;
    /// access energy grows roughly with the square root of array size).
    pub table_pj_per_sqrt_kb: f64,
    /// Off-chip meta-data traffic per byte (heavy-weight prefetchers).
    pub metadata_pj_per_byte: f64,
}

impl EnergyParams {
    /// Order-of-magnitude defaults for a ~32 nm CMP.
    pub fn baseline() -> Self {
        Self {
            inst_pj: 20.0,
            l1_pj: 10.0,
            l2_pj: 30.0,
            l3_pj: 100.0,
            dram_line_pj: 2000.0,
            table_pj_per_sqrt_kb: 1.0,
            metadata_pj_per_byte: 30.0,
        }
    }
}

impl Default for EnergyParams {
    fn default() -> Self {
        Self::baseline()
    }
}

/// Dynamic-energy breakdown for one measured run, in microjoules.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyReport {
    /// Core pipeline energy.
    pub core_uj: f64,
    /// L1I + L1D access energy (demand + prefetch fills).
    pub l1_uj: f64,
    /// L2 + L3 access energy.
    pub llc_uj: f64,
    /// DRAM transfer energy (demand + prefetch lines).
    pub dram_uj: f64,
    /// Prefetcher structure access energy (tables, engine pipeline).
    pub prefetcher_uj: f64,
    /// Off-chip meta-data shuttling energy.
    pub metadata_uj: f64,
}

impl EnergyReport {
    /// Total dynamic energy in microjoules.
    pub fn total_uj(&self) -> f64 {
        self.core_uj
            + self.l1_uj
            + self.llc_uj
            + self.dram_uj
            + self.prefetcher_uj
            + self.metadata_uj
    }

    /// Nanojoules per committed instruction.
    pub fn nj_per_inst(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            0.0
        } else {
            self.total_uj() * 1000.0 / instructions as f64
        }
    }
}

/// Estimates the dynamic energy of a measured run.
///
/// `prefetcher_storage_kb` is the prefetcher's on-chip state (0 when no
/// prefetcher is configured); every demand access is charged one
/// prefetcher-table access, and B-Fetch's engine is additionally charged
/// per lookahead step (BrTC + MHT + confidence reads).
pub fn estimate(r: &RunResult, prefetcher_storage_kb: f64, params: &EnergyParams) -> EnergyReport {
    let pj_to_uj = 1e-6;
    let m = &r.mem;
    let l1_accesses = m.l1d_accesses() + m.inst_fetches + m.prefetch_issued;
    let l2_accesses =
        m.l1d_misses + m.prefetch_issued - m.prefetch_redundant.min(m.prefetch_issued);
    let l3_accesses = l2_accesses.saturating_sub(m.l2_hits);
    let dram_lines = m.dram_reqs
        + (m.prefetch_issued
            - m.prefetch_redundant.min(m.prefetch_issued)
            - m.prefetch_mshr_drops.min(m.prefetch_issued));

    let table_pj = params.table_pj_per_sqrt_kb * prefetcher_storage_kb.max(0.0).sqrt();
    let mut prefetcher_pj = table_pj * m.l1d_accesses() as f64;
    if let Some(e) = &r.engine {
        // one BrTC + MHT + confidence access per walked branch, plus the
        // filter/queue work per candidate
        prefetcher_pj = table_pj * (e.branches_walked + e.candidates) as f64;
    }

    EnergyReport {
        core_uj: r.instructions as f64 * params.inst_pj * pj_to_uj,
        l1_uj: l1_accesses as f64 * params.l1_pj * pj_to_uj,
        llc_uj: (l2_accesses as f64 * params.l2_pj + l3_accesses as f64 * params.l3_pj) * pj_to_uj,
        dram_uj: dram_lines as f64 * params.dram_line_pj * pj_to_uj,
        prefetcher_uj: prefetcher_pj * pj_to_uj,
        metadata_uj: r.pf_metadata_bytes as f64 * params.metadata_pj_per_byte * pj_to_uj,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PrefetcherKind, SimConfig};
    use crate::session::SimSession;
    use bfetch_isa::{ProgramBuilder, Reg};

    fn stream() -> bfetch_isa::Program {
        let mut b = ProgramBuilder::new("e-stream");
        b.li(Reg::R1, 0x100_0000);
        b.li(Reg::R2, 0x140_0000);
        let top = b.label();
        b.bind(top);
        b.load(Reg::R4, Reg::R1, 0);
        b.add(Reg::R5, Reg::R5, Reg::R4);
        b.addi(Reg::R1, Reg::R1, 64);
        b.blt(Reg::R1, Reg::R2, top);
        b.halt();
        b.finish()
    }

    fn run(kind: PrefetcherKind) -> RunResult {
        let mut cfg = SimConfig::baseline().with_prefetcher(kind);
        cfg.warmup_insts = 3_000;
        SimSession::new(cfg)
            .instructions(20_000)
            .run_one(&stream())
            .unwrap_or_else(|e| panic!("{e}"))
            .into_single()
    }

    #[test]
    fn energy_is_positive_and_dram_dominated_for_streams() {
        let r = run(PrefetcherKind::None);
        let e = estimate(&r, 0.0, &EnergyParams::baseline());
        assert!(e.total_uj() > 0.0);
        assert!(
            e.dram_uj > e.l1_uj,
            "a DRAM-streaming kernel must be DRAM-energy dominated: {e:?}"
        );
        assert_eq!(e.metadata_uj, 0.0);
    }

    #[test]
    fn isb_pays_metadata_energy() {
        let r = run(PrefetcherKind::Isb);
        assert!(r.pf_metadata_bytes > 0, "ISB must shuttle meta-data");
        let e = estimate(&r, 2.0, &EnergyParams::baseline());
        assert!(e.metadata_uj > 0.0);
    }

    #[test]
    fn light_weight_prefetcher_energy_overhead_is_modest() {
        let base = run(PrefetcherKind::None);
        let bf = run(PrefetcherKind::BFetch);
        let e_base = estimate(&base, 0.0, &EnergyParams::baseline());
        let e_bf = estimate(&bf, 13.3, &EnergyParams::baseline());
        let base_npi = e_base.nj_per_inst(base.instructions);
        let bf_npi = e_bf.nj_per_inst(bf.instructions);
        // B-Fetch adds engine + prefetch-traffic energy; on this worst-case
        // kernel (a branch every 4 instructions, each triggering a deep
        // walk) it must still stay within 2x of baseline — far below the
        // cost of running the whole core ahead as runahead execution does
        assert!(
            bf_npi < base_npi * 2.0,
            "B-Fetch energy {bf_npi} vs baseline {base_npi}"
        );
    }

    #[test]
    fn report_totals_are_consistent() {
        let e = EnergyReport {
            core_uj: 1.0,
            l1_uj: 2.0,
            llc_uj: 3.0,
            dram_uj: 4.0,
            prefetcher_uj: 5.0,
            metadata_uj: 6.0,
        };
        assert!((e.total_uj() - 21.0).abs() < 1e-12);
        assert!((e.nj_per_inst(21_000) - 1.0).abs() < 1e-12);
    }
}
