//! Typed simulation failures and the diagnostic snapshot the
//! forward-progress watchdog captures when it aborts a run.
//!
//! Production batch infrastructure treats an individual hung or runaway
//! simulation as a routine, recoverable event: the run is killed with a
//! diagnosis attached and the rest of the sweep continues. [`SimError`] is
//! that diagnosis — a value, not a panic — so the experiment harness can
//! report it per grid point while healthy points complete normally. The
//! panicking entry points ([`crate::run_single`] / [`crate::run_multi`])
//! keep their historical contract by unwrapping the typed result.

use std::fmt;

/// The state of one ROB head entry at abort time: the instruction the
/// core was trying to retire when progress stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RobHeadDiag {
    /// Global sequence number of the head instruction.
    pub seq: u64,
    /// Its program counter.
    pub pc: u64,
    /// Whether it ever got scheduled onto a port.
    pub scheduled: bool,
    /// Its completion cycle (`u64::MAX` while unscheduled).
    pub complete_at: u64,
}

/// Per-core state captured when a run aborts: enough to tell *where* the
/// machine wedged (frontend, ROB head, memory system, or engine queue)
/// without re-running under a debugger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreDiag {
    /// Core id.
    pub core: usize,
    /// Instructions committed so far (including warmup).
    pub committed: u64,
    /// Occupied ROB entries.
    pub rob_len: usize,
    /// The oldest in-flight instruction, if any.
    pub rob_head: Option<RobHeadDiag>,
    /// Queued demand-prefetcher requests.
    pub pf_queue_len: usize,
    /// B-Fetch engine prefetch-queue occupancy, when an engine is
    /// configured.
    pub engine_queue_len: Option<usize>,
    /// Live demand-MSHR entries in this core's L1D.
    pub mshr_live: usize,
    /// Live prefetch-MSHR entries in this core's L1D.
    pub pf_mshr_live: usize,
    /// The cycle fetch is stalled until (0 or past = not stalled).
    pub fetch_stall_until: u64,
}

impl fmt::Display for CoreDiag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "core {}: committed={} rob={}",
            self.core, self.committed, self.rob_len
        )?;
        match &self.rob_head {
            Some(h) => write!(
                f,
                " head{{seq={} pc={:#x} scheduled={} complete_at={}}}",
                h.seq,
                h.pc,
                h.scheduled,
                if h.complete_at == u64::MAX {
                    "never".to_string()
                } else {
                    h.complete_at.to_string()
                }
            )?,
            None => write!(f, " head=empty")?,
        }
        write!(
            f,
            " mshr={}/{}pf pfq={}",
            self.mshr_live, self.pf_mshr_live, self.pf_queue_len
        )?;
        if let Some(q) = self.engine_queue_len {
            write!(f, " engineq={q}")?;
        }
        write!(f, " fetch_stall_until={}", self.fetch_stall_until)
    }
}

/// Everything the watchdog saw at abort time, one line per core when
/// rendered with `Display`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiagSnapshot {
    /// The cycle the snapshot was taken.
    pub cycle: u64,
    /// Per-core state, in core order.
    pub cores: Vec<CoreDiag>,
}

impl fmt::Display for DiagSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "snapshot at cycle {}", self.cycle)?;
        for c in &self.cores {
            write!(f, "; {c}")?;
        }
        Ok(())
    }
}

/// A failed simulation run. Deterministic: the same configuration and
/// workload produce the same error, cycle numbers included.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// No core committed an instruction for at least
    /// [`SimConfig::watchdog_cycles`](crate::SimConfig::watchdog_cycles)
    /// cycles — the machine is livelocked or deadlocked. Carries a
    /// diagnostic snapshot of every core.
    Watchdog {
        /// The cycle the watchdog fired at.
        cycle: u64,
        /// The configured no-commit threshold that was exceeded.
        idle_cycles: u64,
        /// Per-core machine state at abort time.
        snapshot: DiagSnapshot,
    },
    /// The run exceeded its hard cycle budget
    /// ([`SimConfig::max_cycles`](crate::SimConfig::max_cycles), or the
    /// derived default) before every core reached its instruction quota.
    CycleBudget {
        /// Which phase ran out: `"warmup"` or `"measurement"`.
        phase: &'static str,
        /// The cycle the budget was exhausted at.
        cycle: u64,
        /// The configured (or derived) budget.
        limit: u64,
    },
    /// A core panicked inside a parallel worker thread. The engine
    /// catches the unwind, poisons the cycle's shared-turn protocol so the
    /// other workers drain out, and reports the first panic here instead
    /// of crashing the process.
    CorePanic {
        /// The core whose step panicked.
        core: usize,
        /// The cycle it panicked at.
        cycle: u64,
        /// The panic payload, when it carried a string.
        message: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Watchdog {
                cycle,
                idle_cycles,
                snapshot,
            } => write!(
                f,
                "watchdog: no instruction committed for {idle_cycles} cycles \
                 (aborted at cycle {cycle}); {snapshot}"
            ),
            SimError::CycleBudget {
                phase,
                cycle,
                limit,
            } => write!(
                f,
                "cycle budget exhausted during {phase}: {cycle} cycles \
                 elapsed (limit {limit})"
            ),
            SimError::CorePanic {
                core,
                cycle,
                message,
            } => write!(
                f,
                "core {core} panicked at cycle {cycle}: {message}"
            ),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag() -> CoreDiag {
        CoreDiag {
            core: 0,
            committed: 123,
            rob_len: 4,
            rob_head: Some(RobHeadDiag {
                seq: 9,
                pc: 0x40,
                scheduled: false,
                complete_at: u64::MAX,
            }),
            pf_queue_len: 2,
            engine_queue_len: Some(7),
            mshr_live: 3,
            pf_mshr_live: 1,
            fetch_stall_until: 55,
        }
    }

    #[test]
    fn watchdog_display_names_every_core_fact() {
        let e = SimError::Watchdog {
            cycle: 10_000,
            idle_cycles: 5_000,
            snapshot: DiagSnapshot {
                cycle: 10_000,
                cores: vec![diag()],
            },
        };
        let s = e.to_string();
        for needle in [
            "watchdog",
            "5000 cycles",
            "cycle 10000",
            "core 0",
            "committed=123",
            "rob=4",
            "seq=9",
            "complete_at=never",
            "mshr=3/1pf",
            "engineq=7",
        ] {
            assert!(s.contains(needle), "missing {needle:?} in {s}");
        }
    }

    #[test]
    fn budget_display_names_phase_and_limit() {
        let e = SimError::CycleBudget {
            phase: "warmup",
            cycle: 42,
            limit: 40,
        };
        let s = e.to_string();
        assert!(s.contains("warmup") && s.contains("42") && s.contains("limit 40"));
    }

    #[test]
    fn errors_are_comparable_values() {
        let a = SimError::CycleBudget {
            phase: "measurement",
            cycle: 1,
            limit: 1,
        };
        assert_eq!(a.clone(), a);
    }
}
