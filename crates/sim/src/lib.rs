//! # bfetch-sim
//!
//! The cycle-stepped chip-multiprocessor timing simulator the B-Fetch
//! reproduction is evaluated on — standing in for the paper's gem5 setup
//! (Table II): 4-wide out-of-order cores with 192-entry ROBs, per-core
//! L1I/L1D/L2, a shared L3 (2 MB/core), a bandwidth-limited DRAM channel,
//! a tournament branch predictor, and pluggable prefetchers (none, Next-N,
//! Stride, SMS, B-Fetch, or a Perfect oracle).
//!
//! See [`run_single`] / [`run_multi`] for the measurement entry points and
//! [`analysis`] for the instrumentation used by Figures 3 and 7. The
//! traced variants ([`run_single_traced`] / [`run_multi_traced`]) add
//! prefetch-lifecycle observability — typed trace events plus exact
//! per-core lifecycle tallies — without perturbing timing; enable them
//! per-config with [`SimConfig::with_trace`] (see `bfetch-stats`). The
//! CPI-accounted variants ([`run_single_cpi`] / [`run_multi_cpi`]) charge
//! every lost commit slot to a root cause and sample an interval timeline
//! (see [`SimConfig::with_cpi`]), again without perturbing timing.
//!
//! ## Fidelity notes (also in DESIGN.md)
//!
//! * Functional execution advances on the correct path at fetch; wrong-path
//!   *timing* is modelled as a fetch stall until branch resolution plus a
//!   redirect penalty, but wrong-path memory side effects are not simulated.
//! * The global history register is updated with actual outcomes at fetch,
//!   so predictor accuracy is marginally optimistic; identical treatment
//!   across all configurations keeps speedups comparable.
//! * Fills install when they complete, so prefetch timeliness (including
//!   late prefetches that merge in the MSHRs) is modelled faithfully.

pub mod analysis;
pub mod cmp;
pub mod config;
pub mod core;
pub mod energy;
pub mod error;
mod parallel;
pub mod ports;
pub mod session;

pub use analysis::{delta_cdfs, DeltaCdfs};
pub use bfetch_stats::{CpiComponent, CpiConfig, CpiStack, TimelineSample, TraceConfig};
#[allow(deprecated)]
pub use cmp::{
    run_multi, run_multi_cpi, run_multi_traced, run_single, run_single_cpi, run_single_traced,
    try_run_multi, try_run_single, CpiRun, RunResult, SeqMem, TracedRun,
};
pub use session::{RunOutput, SimSession, TraceOutput};
pub use config::{FaultInjection, PredictorKind, PrefetcherKind, SimConfig};
pub use error::{CoreDiag, DiagSnapshot, RobHeadDiag, SimError};
pub use core::{Core, CoreCounters};
pub use energy::{EnergyParams, EnergyReport};
