//! The parallel CMP engine: cores step concurrently across OS worker
//! threads under a deterministic cycle barrier.
//!
//! # Execution model
//!
//! Each simulated cycle runs in two phases separated by barriers:
//!
//! 1. **Coordinator phase** (single-threaded, between cycles): installs
//!    every fill due this cycle in canonical `(complete_at, seq)` order via
//!    [`drain_chip`], delivers prefetch feedback from the previous cycle to
//!    the engines, runs the quota/watchdog/budget bookkeeping, and resets
//!    the shared-turn protocol.
//! 2. **Step phase** (parallel): worker `w` steps cores `w, w+W, w+2W, …`
//!    in ascending order. Private pipeline + L1/L2 activity proceeds
//!    concurrently; every operation that touches the shared L3/DRAM blocks
//!    on a [`TurnGate`] until the turn counter reaches the core's id, so
//!    shared-level interactions resolve in canonical core order.
//!
//! # Why this is byte-identical to the sequential engine
//!
//! * Fills complete strictly in the future (`complete_at ≥ now + 2`), so
//!   installing them only at cycle start — coordinator phase — observes the
//!   same state the sequential engine's cycle-start drain does, and the
//!   per-access drains the sequential facade performs mid-cycle are no-ops.
//! * Shared-level calls are serialized in core order by the turn gate, so
//!   DRAM channel scheduling, L3 LRU updates, and shared fill sequence
//!   numbers come out exactly as in sequential core-order stepping.
//! * Per-core state (pipeline, L1/L2, MSHRs, private fill queue, feedback
//!   queue, stats) is touched only by the owning worker during the step
//!   phase and only by the coordinator between barriers; the barriers'
//!   happens-before edges make the handoff race-free.
//! * Feedback is delivered by the coordinator in core order at end of
//!   cycle — the same point, and the same per-core `[drain events] ++
//!   [step events]` order, as the sequential engine.
//!
//! The cross-thread-count determinism tests in this module's test suite and
//! `crates/sim/tests/` pin this equivalence against golden fixtures.
//!
//! # Panic containment
//!
//! A panic inside a worker (e.g. injected faults in tests, or a genuine
//! model bug) is caught at the core-step boundary; the worker poisons the
//! shared turn, which wakes and unwinds every gate-blocked peer, all
//! workers converge on the cycle-end barrier, and the coordinator surfaces
//! the first panic as [`SimError::CorePanic`] instead of crashing the
//! process.

use std::cell::UnsafeCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Barrier;

use crate::cmp::{hist_delta, RawRunOutput, RunResult, Snapshot};
use crate::config::SimConfig;
use crate::core::Core;
use bfetch_isa::Program;
use bfetch_mem::{
    drain_chip, AccessKind, AccessOutcome, ChipGuard, CoreMem, CoreProbe, CoreSet, MemStats,
    MemoryInterface, MemorySystem, SharedTurn, TurnGate,
};
use crate::error::{DiagSnapshot, SimError};

/// One core's worth of parallel-stepped state: the pipeline plus the
/// private memory hierarchy it owns exclusively during the step phase.
struct Slot {
    core: Core,
    mem: CoreMem,
}

/// The per-core slots, shared across worker threads.
///
/// `Slot` is not `Sync` (the tracer handle inside `Core`/`CoreMem` is
/// `Rc`-based), but parallel runs never install a tracer — the handles stay
/// in their empty `disabled` state, holding no `Rc` at all — and every
/// other field is plain owned data. Exclusive access is guaranteed by the
/// phase discipline: during a step phase each slot is touched only by its
/// owning worker, and between barriers only by the coordinator.
struct PhaseCells(Vec<UnsafeCell<Slot>>);

// SAFETY: see the struct docs — slots hold no cross-thread-shared interior
// state, and the barrier protocol gives each slot a single exclusive
// accessor at every point in time.
unsafe impl Sync for PhaseCells {}

impl PhaseCells {
    /// # Safety
    ///
    /// The caller must hold exclusive access to slot `i` under the phase
    /// discipline (owning worker during a step phase, coordinator between
    /// barriers) and must not let two returned references to the same slot
    /// coexist.
    #[allow(clippy::mut_from_ref)]
    unsafe fn slot(&self, i: usize) -> &mut Slot {
        &mut *self.0[i].get()
    }
}

/// Coordinator-phase view of every core's private hierarchy, for
/// [`drain_chip`].
struct CellCores<'a> {
    cells: &'a PhaseCells,
}

impl CoreSet for CellCores<'_> {
    fn len(&self) -> usize {
        self.cells.0.len()
    }

    fn core_mut(&mut self, i: usize) -> &mut CoreMem {
        // SAFETY: CellCores is only constructed in the coordinator phase,
        // where no worker is stepping; `&mut self` serializes the returned
        // borrows.
        unsafe { &mut self.cells.slot(i).mem }
    }
}

/// The memory system as one worker-stepped core sees it: its private
/// hierarchy directly, the shared levels through the turn gate.
struct WorkerMem<'a, 'b> {
    mem: &'a mut CoreMem,
    gate: TurnGate<'b>,
}

impl MemoryInterface for WorkerMem<'_, '_> {
    fn access(&mut self, core: usize, kind: AccessKind, addr: u64, now: u64) -> AccessOutcome {
        debug_assert_eq!(core, self.mem.id());
        self.mem.access(&mut self.gate, kind, addr, now)
    }

    fn prefetch(&mut self, core: usize, addr: u64, pc_hash: u16, now: u64) -> Option<u64> {
        debug_assert_eq!(core, self.mem.id());
        self.mem.prefetch(&mut self.gate, addr, pc_hash, now)
    }

    fn prefetch_inst(&mut self, core: usize, addr: u64, now: u64) -> Option<u64> {
        debug_assert_eq!(core, self.mem.id());
        self.mem.prefetch_inst(&mut self.gate, addr, now)
    }

    fn stats(&self, core: usize) -> &MemStats {
        debug_assert_eq!(core, self.mem.id());
        self.mem.stats()
    }

    fn mshr_live(&self, core: usize) -> usize {
        debug_assert_eq!(core, self.mem.id());
        self.mem.mshr_live()
    }

    fn pf_mshr_live(&self, core: usize) -> usize {
        debug_assert_eq!(core, self.mem.id());
        self.mem.pf_mshr_live()
    }
}

/// How many worker threads a run will actually use: the configured count,
/// clamped to the host's parallelism (unless `force_os_threads` — the test
/// suite's hook for exercising real OS threads on small hosts) and to the
/// core count (extra workers would just idle at the barriers).
pub(crate) fn effective_workers(cfg: &SimConfig, n_cores: usize) -> usize {
    let requested = cfg.threads.max(1);
    let clamped = if cfg.force_os_threads {
        requested
    } else {
        requested.min(
            std::thread::available_parallelism()
                .map(|v| v.get())
                .unwrap_or(1),
        )
    };
    clamped.min(n_cores)
}

fn panic_payload(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Everything the worker threads share with the coordinator.
struct Ctx<'a> {
    cells: &'a PhaseCells,
    turn: &'a SharedTurn,
    /// Released by the coordinator to start a step phase (or, with `stop`
    /// set, to shut the workers down).
    start: &'a Barrier,
    /// Reached by every worker when its cores have stepped.
    end: &'a Barrier,
    stop: &'a AtomicBool,
    frozen: &'a AtomicBool,
    now: &'a AtomicU64,
}

fn worker_loop(ctx: &Ctx<'_>, w: usize, workers: usize, panic_at_insts: u64) {
    bfetch_prof::set_thread_name(&format!("worker{w}"));
    let n = ctx.cells.0.len();
    loop {
        {
            let _p = bfetch_prof::span(bfetch_prof::PAR_BARRIER_START);
            ctx.start.wait();
        }
        if ctx.stop.load(Ordering::SeqCst) {
            break;
        }
        let now = ctx.now.load(Ordering::SeqCst);
        if !ctx.frozen.load(Ordering::SeqCst) {
            for i in (w..n).step_by(workers) {
                // Times the whole step attempt, turn-gate waits included
                // (the gate records its own share under par.gate_wait).
                let step_span = bfetch_prof::core_span(i);
                let stepped = catch_unwind(AssertUnwindSafe(|| {
                    // SAFETY: cores are partitioned by `i % workers == w`,
                    // so this worker is slot i's only accessor during the
                    // step phase.
                    let Slot { core, mem } = unsafe { ctx.cells.slot(i) };
                    let mut wm = WorkerMem {
                        mem,
                        gate: ctx.turn.gate(i),
                    };
                    core.cycle(now, &mut wm);
                    // Engine feedback, fused with the step (same delivery
                    // point as the sequential engine's fused loop): the
                    // queue is fed only by the cycle-start drain and this
                    // core's own step, and read only by the next cycle's
                    // drain, so draining here — while the worker still owns
                    // the slot — is byte-identical to a coordinator pass
                    // and keeps the serial phase to the guard notes.
                    mem.drain_feedback(|fb| core.feedback(fb.pc_hash, fb.useful));
                    let done = core.counters().committed;
                    if panic_at_insts > 0 && done >= panic_at_insts {
                        panic!(
                            "injected fault: core panicked after {done} committed instructions \
                             (panic_at_insts={panic_at_insts})"
                        );
                    }
                }));
                drop(step_span);
                match stepped {
                    Ok(()) => ctx.turn.finish_core(i),
                    Err(p) => {
                        ctx.turn.poison(i, panic_payload(p));
                        break;
                    }
                }
            }
        }
        let _p = bfetch_prof::span(bfetch_prof::PAR_BARRIER_END);
        ctx.end.wait();
    }
    // scope() joins when this closure returns, possibly before TLS
    // destructors run, so the buffer must be flushed explicitly here.
    bfetch_prof::flush_thread();
}

fn snapshot_cells(cells: &PhaseCells, now: u64) -> DiagSnapshot {
    DiagSnapshot {
        cycle: now,
        cores: (0..cells.0.len())
            .map(|i| {
                // SAFETY: coordinator phase; exclusive access.
                let slot = unsafe { cells.slot(i) };
                slot.core.diag(&CoreProbe(&slot.mem))
            })
            .collect(),
    }
}

/// The parallel counterpart of `cmp::try_run_multi_impl`, stepping cores
/// across `workers` OS threads. Requires tracing to be disabled (traced
/// runs fall back to the sequential engine) and produces byte-identical
/// results, CPI stacks, and timelines for any worker count.
pub(crate) fn try_run_multi_parallel(
    programs: &[Program],
    cfg: &SimConfig,
    insts: u64,
    workers: usize,
) -> Result<RawRunOutput, SimError> {
    assert!(!programs.is_empty(), "need at least one program");
    assert!(insts > 0, "need a nonzero instruction quota");
    assert!(!cfg.trace.enabled, "traced runs use the sequential engine");
    let n = programs.len();
    let (core_mems, shared) = MemorySystem::new(cfg.hierarchy(n)).into_parts();
    let cells = PhaseCells(
        programs
            .iter()
            .zip(core_mems)
            .enumerate()
            .map(|(i, (p, mem))| {
                UnsafeCell::new(Slot {
                    core: Core::new(i, p.clone(), cfg),
                    mem,
                })
            })
            .collect(),
    );
    let turn = SharedTurn::new(shared, n);
    let mut guard = ChipGuard::new();

    let hard_cap: u64 = if cfg.max_cycles > 0 {
        cfg.max_cycles
    } else {
        (cfg.warmup_insts + insts) * 600 + 4_000_000
    };
    let wd = cfg.watchdog_cycles;
    let mut wd_deadline: u64 = if wd > 0 { wd } else { u64::MAX };
    let mut wd_committed: u64 = 0;
    let fault_on = cfg.fault.active();
    let mut frozen = false;

    let start = Barrier::new(workers + 1);
    let end = Barrier::new(workers + 1);
    let stop = AtomicBool::new(false);
    let frozen_flag = AtomicBool::new(false);
    let now_cell = AtomicU64::new(0);
    let ctx = Ctx {
        cells: &cells,
        turn: &turn,
        start: &start,
        end: &end,
        stop: &stop,
        frozen: &frozen_flag,
        now: &now_cell,
    };

    let results = std::thread::scope(|s| -> Result<Vec<RunResult>, SimError> {
        for w in 0..workers {
            let ctx = &ctx;
            s.spawn(move || worker_loop(ctx, w, workers, cfg.fault.panic_at_insts));
        }

        let run = (|| -> Result<Vec<RunResult>, SimError> {
            let mut now: u64 = 0;
            // `None` while warming up; snapshots mark the measurement window.
            let mut snaps: Option<Vec<Snapshot>> = None;
            let mut finished: Vec<Option<RunResult>> = (0..n).map(|_| None).collect();
            let mut remaining = n;

            loop {
                // ---- coordinator phase ----
                turn.begin_cycle();
                {
                    let _p = bfetch_prof::span(bfetch_prof::SIM_DRAIN);
                    turn.with_shared(|sh| {
                        drain_chip(&mut CellCores { cells: &cells }, sh, now, &mut guard)
                    });
                }
                now_cell.store(now, Ordering::SeqCst);
                {
                    // Coordinator's view of the whole step phase: release
                    // barrier to join barrier. Worker-side splits live in
                    // par.barrier_* and the per-core step spans.
                    let _p = bfetch_prof::span(bfetch_prof::PAR_STEP_PHASE);
                    start.wait();
                    // ---- step phase: workers run cycle `now` ----
                    end.wait();
                }
                let _bookkeep = bfetch_prof::span(bfetch_prof::SIM_BOOKKEEP);
                if let Some((core, message)) = turn.take_panic() {
                    return Err(SimError::CorePanic {
                        core,
                        cycle: now,
                        message,
                    });
                }
                // End-of-cycle bookkeeping, in canonical core order: the
                // chip guard's earliest-event notes. (Engine feedback is
                // drained by each worker right after it steps the core —
                // the only serial per-core work left here is this scalar.)
                for i in 0..n {
                    // SAFETY: coordinator phase; exclusive access.
                    let Slot { mem, .. } = unsafe { cells.slot(i) };
                    guard.note(mem.take_sched_min());
                }
                if fault_on && !frozen && cfg.fault.freeze_at_insts > 0 {
                    let hit = (0..n).any(|i| {
                        // SAFETY: coordinator phase; exclusive access.
                        let slot = unsafe { cells.slot(i) };
                        slot.core.counters().committed >= cfg.fault.freeze_at_insts
                    });
                    if hit {
                        frozen = true;
                        frozen_flag.store(true, Ordering::SeqCst);
                    }
                }
                now += 1;

                match &snaps {
                    None => {
                        let warmed = (0..n).all(|i| {
                            // SAFETY: coordinator phase; exclusive access.
                            let slot = unsafe { cells.slot(i) };
                            slot.core.counters().committed >= cfg.warmup_insts
                        });
                        if warmed {
                            // Measurement starts: CPI accounting switches on
                            // and the window baselines are snapshotted at
                            // the same cycle the sequential engine does.
                            // (No tracer: traced runs are sequential-only.)
                            if cfg.cpi.enabled {
                                for i in 0..n {
                                    // SAFETY: coordinator phase.
                                    let Slot { core, mem } = unsafe { cells.slot(i) };
                                    core.enable_cpi(&cfg.cpi, &CoreProbe(mem));
                                }
                            }
                            snaps = Some(
                                (0..n)
                                    .map(|i| {
                                        // SAFETY: coordinator phase.
                                        let Slot { core, mem } = unsafe { cells.slot(i) };
                                        Snapshot {
                                            committed: core.counters().committed,
                                            counters: *core.counters(),
                                            mem: *mem.stats(),
                                            engine: core.engine().map(|e| *e.stats()),
                                            pf_metadata: core.pf_metadata_bytes(),
                                            cycle: now,
                                        }
                                    })
                                    .collect(),
                            );
                            // The sequential warmup loop breaks before its
                            // watchdog/budget checks on the completing
                            // cycle; mirror that.
                            continue;
                        }
                    }
                    Some(snaps) => {
                        for i in 0..n {
                            if finished[i].is_some() {
                                continue;
                            }
                            // SAFETY: coordinator phase; exclusive access.
                            let Slot { core, mem } = unsafe { cells.slot(i) };
                            let snap = &snaps[i];
                            if core.counters().committed - snap.committed >= insts {
                                let counters = core.counters();
                                finished[i] = Some(RunResult {
                                    workload: core.program_name().to_string(),
                                    prefetcher: cfg.prefetcher.name(),
                                    cycles: now - snap.cycle,
                                    instructions: counters.committed - snap.committed,
                                    mem: mem.stats().delta(&snap.mem),
                                    cond_branches: counters.cond_branches
                                        - snap.counters.cond_branches,
                                    mispredicts: counters.mispredicts - snap.counters.mispredicts,
                                    branch_fetch_hist: hist_delta(
                                        &counters.branch_fetch_hist,
                                        &snap.counters.branch_fetch_hist,
                                    ),
                                    engine: core
                                        .engine()
                                        .map(|e| e.stats().delta(&snap.engine.expect("snapshot taken"))),
                                    pf_metadata_bytes: core.pf_metadata_bytes() - snap.pf_metadata,
                                    cpi: core.cpi_stack().copied(),
                                });
                                remaining -= 1;
                            }
                        }
                        if remaining == 0 {
                            break;
                        }
                    }
                }
                if now >= wd_deadline {
                    let total: u64 = (0..n)
                        .map(|i| {
                            // SAFETY: coordinator phase; exclusive access.
                            unsafe { cells.slot(i) }.core.counters().committed
                        })
                        .sum();
                    if total == wd_committed {
                        return Err(SimError::Watchdog {
                            cycle: now,
                            idle_cycles: wd,
                            snapshot: snapshot_cells(&cells, now),
                        });
                    }
                    wd_committed = total;
                    wd_deadline = now + wd;
                }
                if now >= hard_cap {
                    return Err(SimError::CycleBudget {
                        phase: if snaps.is_none() {
                            "warmup"
                        } else {
                            "measurement"
                        },
                        cycle: now,
                        limit: hard_cap,
                    });
                }
            }

            Ok(finished
                .into_iter()
                .map(|r| r.expect("all finished"))
                .collect())
        })();

        // Whatever happened, park the workers at the start barrier and
        // release them with `stop` set so the scope can join them.
        stop.store(true, Ordering::SeqCst);
        start.wait();
        run
    })?;

    let timeline = cells
        .0
        .into_iter()
        .map(UnsafeCell::into_inner)
        .flat_map(|mut slot| slot.core.take_timeline())
        .collect();
    Ok((results, None, timeline))
}
