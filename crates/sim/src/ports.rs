//! Issue-port bandwidth scheduling.

/// A ring buffer tracking how many operations are scheduled in each future
/// cycle, enforcing a per-cycle issue width.
///
/// The timing core computes instruction issue times analytically at
/// dispatch; this structure serializes them through a bounded number of
/// issue (or memory) ports without a per-cycle scan of the whole window.
#[derive(Debug, Clone)]
pub struct PortRing {
    counts: Vec<u8>,
    width: u8,
    horizon: u64,
}

impl PortRing {
    /// Creates a ring with `width` ports and a scheduling horizon of
    /// `horizon` cycles (must exceed the longest possible stall).
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or `horizon` is not a power of two.
    pub fn new(width: usize, horizon: u64) -> Self {
        assert!(width > 0, "width must be nonzero");
        assert!(horizon.is_power_of_two(), "horizon must be a power of two");
        Self {
            counts: vec![0; horizon as usize],
            width: width as u8,
            horizon,
        }
    }

    #[inline]
    fn slot(&self, cycle: u64) -> usize {
        (cycle & (self.horizon - 1)) as usize
    }

    /// Reserves a port at the first cycle `>= earliest` with free capacity
    /// and returns that cycle.
    ///
    /// The caller must guarantee that reservations never look further back
    /// than `horizon` cycles behind the most recent reservation (true in
    /// the simulator: all times are near the global clock). Slots are
    /// cleared lazily by [`PortRing::release_before`].
    pub fn reserve(&mut self, earliest: u64) -> u64 {
        let mut t = earliest;
        loop {
            let s = self.slot(t);
            if self.counts[s] < self.width {
                self.counts[s] += 1;
                return t;
            }
            t += 1;
            debug_assert!(
                t - earliest < self.horizon,
                "port search exceeded scheduling horizon"
            );
        }
    }

    /// Clears all slots strictly before `cycle` (call as the clock
    /// advances; `span` bounds how far back to sweep).
    pub fn release_before(&mut self, cycle: u64, span: u64) {
        let lo = cycle.saturating_sub(span);
        for t in lo..cycle {
            let s = self.slot(t);
            self.counts[s] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_width_then_spills() {
        let mut p = PortRing::new(2, 1024);
        assert_eq!(p.reserve(10), 10);
        assert_eq!(p.reserve(10), 10);
        assert_eq!(p.reserve(10), 11);
        assert_eq!(p.reserve(10), 11);
        assert_eq!(p.reserve(10), 12);
    }

    #[test]
    fn later_earliest_skips_ahead() {
        let mut p = PortRing::new(1, 1024);
        assert_eq!(p.reserve(5), 5);
        assert_eq!(p.reserve(3), 3, "earlier slot still free");
        assert_eq!(p.reserve(3), 4);
        assert_eq!(p.reserve(3), 6, "5 already full");
    }

    #[test]
    fn release_frees_old_slots() {
        let mut p = PortRing::new(1, 8);
        for _ in 0..8 {
            p.reserve(0);
        }
        p.release_before(8, 8);
        assert_eq!(p.reserve(8), 8);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_horizon_rejected() {
        PortRing::new(1, 100);
    }
}
