//! The unified run API: one builder, one output type.
//!
//! Historically the run surface was ten free functions — `run_single` /
//! `run_multi` crossed with plain / `_traced` / `_cpi` variants and `try_`
//! prefixes. [`SimSession`] collapses them into a single builder:
//!
//! ```
//! use bfetch_sim::{SimSession, SimConfig, PrefetcherKind};
//! use bfetch_isa::{ProgramBuilder, Reg};
//!
//! let mut b = ProgramBuilder::new("demo");
//! b.li(Reg::R1, 0x10_0000);
//! let top = b.label();
//! b.bind(top);
//! b.load(Reg::R2, Reg::R1, 0);
//! b.addi(Reg::R1, Reg::R1, 64);
//! b.jmp(top);
//! let program = b.finish();
//!
//! let mut cfg = SimConfig::baseline().with_prefetcher(PrefetcherKind::BFetch);
//! cfg.warmup_insts = 1_000;
//! let out = SimSession::new(cfg)
//!     .cpi(true)
//!     .threads(1)
//!     .instructions(2_000)
//!     .run(std::slice::from_ref(&program))
//!     .expect("run completes");
//! assert_eq!(out.results.len(), 1);
//! assert!(out.results[0].cpi.is_some());
//! ```
//!
//! The toggles mirror the old variants: [`SimSession::trace`] is
//! `run_multi_traced`, [`SimSession::cpi`] is `run_multi_cpi`, and the
//! `Result` return is the `try_` prefix. [`SimSession::threads`] selects
//! the deterministic parallel engine (see `crates/sim/src/parallel.rs`) —
//! results are byte-identical for every thread count, so it is purely a
//! wall-clock knob.

use crate::cmp::RunResult;
use crate::config::SimConfig;
use crate::error::SimError;
use bfetch_isa::Program;
use bfetch_stats::cpi::TimelineSample;
use bfetch_stats::trace::{LifecycleCounts, TraceEvent};

/// The lifecycle trace a traced run produces: the retained event window
/// plus exact per-core tallies (immune to ring overflow).
#[derive(Debug, Clone)]
pub struct TraceOutput {
    /// Retained trace events, oldest first (the ring keeps the most recent
    /// [`TraceConfig::capacity`](crate::TraceConfig) events).
    pub events: Vec<TraceEvent>,
    /// Exact per-core lifecycle tallies; `lifecycle[i]` is valid for every
    /// core `i`.
    pub lifecycle: Vec<LifecycleCounts>,
}

/// Everything one run produces. `results` is always populated (one entry
/// per program, in core order); the other fields reflect the session's
/// toggles.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// Per-core measurement results.
    pub results: Vec<RunResult>,
    /// The lifecycle trace, when [`SimSession::trace`] was enabled.
    pub trace: Option<TraceOutput>,
    /// Interval samples across all cores (each stamped with its core id),
    /// when [`SimSession::cpi`] accounting was enabled; empty otherwise.
    pub timeline: Vec<TimelineSample>,
}

impl RunOutput {
    /// The single result of a one-program run.
    ///
    /// # Panics
    ///
    /// Panics if the run had more than one core.
    pub fn into_single(mut self) -> RunResult {
        assert_eq!(self.results.len(), 1, "run had {} cores", self.results.len());
        self.results.pop().expect("one result")
    }
}

/// A configured simulation run, built once and executed with
/// [`SimSession::run`].
///
/// The session owns a [`SimConfig`] copy; the builder methods adjust the
/// toggles that used to be baked into separate entry-point functions.
/// Everything else (prefetcher, cache geometry, warmup length, fault
/// injection, …) is configured on the `SimConfig` before constructing the
/// session.
#[derive(Debug, Clone)]
pub struct SimSession {
    cfg: SimConfig,
    insts: u64,
}

impl SimSession {
    /// Starts a session from `cfg`. The measurement quota defaults to
    /// unset; call [`SimSession::instructions`] before running.
    pub fn new(cfg: SimConfig) -> Self {
        Self { cfg, insts: 0 }
    }

    /// The configuration this session will run with (after builder
    /// adjustments).
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Sets the per-core measurement quota: each core must commit this
    /// many instructions after warmup.
    pub fn instructions(mut self, insts: u64) -> Self {
        self.insts = insts;
        self
    }

    /// Enables (or disables) lifecycle tracing for the measurement window.
    /// Traced runs execute on the sequential engine regardless of
    /// [`SimSession::threads`] — the trace sink is single-threaded — and
    /// timing results are identical either way: tracing only observes.
    pub fn trace(mut self, enabled: bool) -> Self {
        self.cfg.trace.enabled = enabled;
        self
    }

    /// Enables (or disables) CPI-stack cycle accounting: every result
    /// carries the stack decomposing its measurement window, and the
    /// interval sampler's time series comes back in
    /// [`RunOutput::timeline`]. Timing results are identical either way:
    /// accounting only observes.
    pub fn cpi(mut self, enabled: bool) -> Self {
        self.cfg.cpi.enabled = enabled;
        self
    }

    /// Sets the worker-thread count for the deterministic parallel engine.
    /// Results are byte-identical for every value (`1` = the sequential
    /// engine); the request is clamped to the host's parallelism and the
    /// core count.
    pub fn threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "need at least one thread");
        self.cfg.threads = threads;
        self
    }

    /// Runs `programs`, one per core, measuring
    /// [`instructions`](SimSession::instructions) committed instructions
    /// per core after the configured warmup. Cores that reach their quota
    /// keep executing (continuing to contend for the shared LLC and DRAM)
    /// until every core has finished, as in the paper's multiprogrammed
    /// methodology.
    ///
    /// # Errors
    ///
    /// [`SimError::Watchdog`] when no core commits for the configured
    /// window, [`SimError::CycleBudget`] when the cycle cap is exhausted,
    /// and [`SimError::CorePanic`] when a core panics inside a parallel
    /// worker thread.
    ///
    /// # Panics
    ///
    /// Panics if `programs` is empty or the instruction quota was never
    /// set.
    pub fn run(&self, programs: &[Program]) -> Result<RunOutput, SimError> {
        assert!(
            self.insts > 0,
            "set SimSession::instructions before running"
        );
        let n = programs.len();
        let _run_span = bfetch_prof::span_traced(bfetch_prof::SIM_RUN);
        let (results, sink, timeline) = crate::cmp::run_impl(programs, &self.cfg, self.insts)?;
        let trace = sink.map(|s| {
            let (events, mut lifecycle) = s.into_parts();
            // A core that never emitted an event has no per-core slot yet;
            // pad so `lifecycle[i]` is valid for every core.
            lifecycle.resize(n, LifecycleCounts::default());
            TraceOutput { events, lifecycle }
        });
        Ok(RunOutput {
            results,
            trace,
            timeline,
        })
    }

    /// Single-program convenience wrapper around [`SimSession::run`].
    pub fn run_one(&self, program: &Program) -> Result<RunOutput, SimError> {
        self.run(std::slice::from_ref(program))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PrefetcherKind;
    use bfetch_isa::{ProgramBuilder, Reg};

    fn kernel() -> Program {
        let mut b = ProgramBuilder::new("session-test");
        let base = 0x100_0000u64;
        b.li(Reg::R1, base as i64);
        b.li(Reg::R2, (base + 64 * 1024) as i64);
        let top = b.label();
        b.bind(top);
        b.load(Reg::R4, Reg::R1, 0);
        b.add(Reg::R5, Reg::R5, Reg::R4);
        b.addi(Reg::R1, Reg::R1, 64);
        b.blt(Reg::R1, Reg::R2, top);
        b.halt();
        b.finish()
    }

    fn cfg() -> SimConfig {
        let mut c = SimConfig::baseline().with_prefetcher(PrefetcherKind::BFetch);
        c.warmup_insts = 1_000;
        c
    }

    #[test]
    fn plain_run_has_no_trace_or_timeline() {
        let out = SimSession::new(cfg())
            .instructions(2_000)
            .run_one(&kernel())
            .unwrap();
        assert_eq!(out.results.len(), 1);
        assert!(out.trace.is_none());
        assert!(out.timeline.is_empty());
        assert!(out.results[0].cpi.is_none());
        assert!(out.results[0].instructions >= 2_000);
    }

    #[test]
    fn toggles_populate_their_outputs() {
        let mut c = cfg();
        // Sample often enough that a 2k-instruction window produces points.
        c.cpi.timeline_interval = 500;
        let out = SimSession::new(c)
            .trace(true)
            .cpi(true)
            .instructions(2_000)
            .run_one(&kernel())
            .unwrap();
        let trace = out.trace.expect("trace toggled on");
        assert_eq!(trace.lifecycle.len(), 1);
        assert!(trace.lifecycle[0].issued > 0);
        assert!(!out.timeline.is_empty());
        assert!(out.results[0].cpi.is_some());
    }

    #[test]
    fn into_single_unwraps_one_core() {
        let out = SimSession::new(cfg())
            .instructions(2_000)
            .run_one(&kernel())
            .unwrap();
        let r = out.into_single();
        assert!(r.cycles > 0);
    }

    #[test]
    #[should_panic(expected = "instructions")]
    fn missing_quota_is_a_loud_error() {
        let _ = SimSession::new(cfg()).run_one(&kernel());
    }

    #[test]
    fn toggles_do_not_change_timing() {
        let plain = SimSession::new(cfg())
            .instructions(2_000)
            .run_one(&kernel())
            .unwrap();
        let observed = SimSession::new(cfg())
            .trace(true)
            .cpi(true)
            .instructions(2_000)
            .run_one(&kernel())
            .unwrap();
        assert_eq!(plain.results[0].cycles, observed.results[0].cycles);
        assert_eq!(plain.results[0].mem, observed.results[0].mem);
    }
}
