//! Cross-thread-count determinism: the parallel CMP engine must produce
//! byte-identical results to the sequential engine for every worker count.
//!
//! `force_os_threads` makes the engine honour the requested thread count
//! even on single-CPU hosts, so these tests exercise real OS-thread
//! interleavings (and the turn-gate protocol) everywhere.

use bfetch_isa::{Program, ProgramBuilder, Reg};
use bfetch_sim::{PrefetcherKind, SimConfig, SimError, SimSession};

/// Latency-bound streaming loads: one load per 64 B line plus per-line
/// compute. Exercises the prefetch path and DRAM contention.
fn stream(words: u64) -> Program {
    let mut b = ProgramBuilder::new("det-stream");
    let base = 0x100_0000u64;
    b.li(Reg::R1, base as i64);
    b.li(Reg::R2, (base + words * 8) as i64);
    let top = b.label();
    b.bind(top);
    b.load(Reg::R4, Reg::R1, 0);
    for _ in 0..6 {
        b.add(Reg::R5, Reg::R5, Reg::R4);
        b.xor(Reg::R6, Reg::R6, Reg::R5);
    }
    b.addi(Reg::R1, Reg::R1, 64);
    b.blt(Reg::R1, Reg::R2, top);
    b.halt();
    b.finish()
}

/// Large-stride loads that blow past the L2: keeps the shared L3 and DRAM
/// channel arbitration busy.
fn strided(lines: u64) -> Program {
    let mut b = ProgramBuilder::new("det-strided");
    let base = 0x400_0000u64;
    b.li(Reg::R1, base as i64);
    b.li(Reg::R2, (base + lines * 4096) as i64);
    let top = b.label();
    b.bind(top);
    b.load(Reg::R4, Reg::R1, 0);
    b.add(Reg::R5, Reg::R5, Reg::R4);
    b.addi(Reg::R1, Reg::R1, 4096);
    b.blt(Reg::R1, Reg::R2, top);
    b.halt();
    b.finish()
}

/// Data-dependent branches over loaded values: exercises the predictor and
/// the B-Fetch engine's lookahead without being memory-bound.
fn branchy(iters: u64) -> Program {
    let mut b = ProgramBuilder::new("det-branchy");
    let base = 0x200_0000u64;
    b.init_words(base, &[3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3]);
    b.li(Reg::R1, base as i64);
    b.li(Reg::R2, 0);
    b.li(Reg::R3, iters as i64);
    b.li(Reg::R7, 5);
    let top = b.label();
    let skip = b.label();
    b.bind(top);
    b.and(Reg::R4, Reg::R2, Reg::R7);
    b.slli(Reg::R4, Reg::R4, 3);
    b.add(Reg::R4, Reg::R4, Reg::R1);
    b.load(Reg::R5, Reg::R4, 0);
    b.blt(Reg::R5, Reg::R7, skip);
    b.xor(Reg::R6, Reg::R6, Reg::R5);
    b.bind(skip);
    b.addi(Reg::R2, Reg::R2, 1);
    b.blt(Reg::R2, Reg::R3, top);
    b.halt();
    b.finish()
}

/// Mostly-ALU compute: a fast core that reaches its quota early and keeps
/// running, testing the past-quota contention path.
fn compute(iters: u64) -> Program {
    let mut b = ProgramBuilder::new("det-compute");
    b.li(Reg::R1, 0);
    b.li(Reg::R2, iters as i64);
    b.li(Reg::R3, 0x9e37);
    let top = b.label();
    b.bind(top);
    b.mul(Reg::R4, Reg::R1, Reg::R3);
    b.xor(Reg::R5, Reg::R5, Reg::R4);
    b.srli(Reg::R6, Reg::R5, 3);
    b.add(Reg::R5, Reg::R5, Reg::R6);
    b.addi(Reg::R1, Reg::R1, 1);
    b.blt(Reg::R1, Reg::R2, top);
    b.halt();
    b.finish()
}

fn mix4() -> Vec<Program> {
    vec![
        stream(1 << 14),
        strided(1 << 12),
        branchy(1 << 20),
        compute(1 << 20),
    ]
}

fn det_cfg(kind: PrefetcherKind, threads: usize) -> SimConfig {
    let mut c = SimConfig::baseline()
        .with_prefetcher(kind)
        .with_threads(threads);
    c.warmup_insts = 2_000;
    c.force_os_threads = true;
    c
}

const INSTS: u64 = 3_000;

/// The core determinism claim: results, CPI stacks, and timelines are
/// identical for 1, 2, 4, and 8 worker threads (8 > cores exercises the
/// worker clamp).
#[test]
fn thread_count_does_not_change_results() {
    let programs = mix4();
    let session = |threads| {
        SimSession::new(det_cfg(PrefetcherKind::BFetch, threads))
            .cpi(true)
            .instructions(INSTS)
    };
    let reference = session(1).run(&programs).unwrap();
    assert!(reference.results.iter().all(|r| r.cpi.is_some()));
    for threads in [2, 4, 8] {
        let run = session(threads).run(&programs).unwrap();
        assert_eq!(
            reference.results, run.results,
            "results diverged at {threads} threads"
        );
        assert_eq!(
            reference.timeline, run.timeline,
            "timeline diverged at {threads} threads"
        );
    }
}

/// Same claim without a prefetcher (a different shared-level traffic
/// pattern: no prefetch fills contending for the turn order).
#[test]
fn thread_count_does_not_change_results_without_prefetcher() {
    let programs = mix4();
    let run_at = |threads| {
        SimSession::new(det_cfg(PrefetcherKind::None, threads))
            .instructions(INSTS)
            .run(&programs)
            .unwrap()
            .results
    };
    let reference = run_at(1);
    for threads in [2, 4] {
        assert_eq!(reference, run_at(threads), "results diverged at {threads} threads");
    }
}

/// A banked L3 (NUCA-style) must be just as deterministic across thread
/// counts as the monolithic one.
#[test]
fn banked_l3_is_thread_count_invariant() {
    let programs = mix4();
    let run_at = |threads| {
        SimSession::new(det_cfg(PrefetcherKind::BFetch, threads).with_l3_banks(4))
            .instructions(INSTS)
            .run(&programs)
            .unwrap()
            .results
    };
    let reference = run_at(1);
    for threads in [2, 4] {
        assert_eq!(
            reference,
            run_at(threads),
            "banked results diverged at {threads} threads"
        );
    }
}

/// A panicking core inside a worker thread must surface as a typed
/// [`SimError::CorePanic`] naming the core, not crash the process or
/// deadlock the cycle barrier.
#[test]
fn worker_panic_surfaces_as_typed_error() {
    let programs = mix4();
    let mut cfg = det_cfg(PrefetcherKind::BFetch, 4);
    cfg.fault.panic_at_insts = 2_500;
    // The injected panic unwinds through a worker; silence the default
    // hook's backtrace spam for this expected event.
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let got = SimSession::new(cfg).instructions(INSTS).run(&programs);
    std::panic::set_hook(prev);
    match got {
        Err(SimError::CorePanic { core, message, .. }) => {
            assert!(core < programs.len());
            assert!(
                message.contains("injected fault"),
                "unexpected panic message: {message}"
            );
        }
        other => panic!("expected CorePanic, got {other:?}"),
    }
}
