//! Random-program stress tests: arbitrary (valid) instruction sequences
//! must run through the full timing pipeline without panics, deadlocks or
//! IPC anomalies, under every prefetcher. Driven by the in-tree
//! deterministic PRNG (`bfetch-prng`); build with `--features proptests`
//! (or set `BFETCH_PROP_CASES`) for more cases.

use bfetch_isa::{Inst, Program, Reg};
use bfetch_prng::Pcg32;
use bfetch_sim::{PredictorKind, PrefetcherKind, SimConfig, SimSession};

/// The old `run_single` contract through the unified session API.
fn run_single(p: &bfetch_isa::Program, cfg: &SimConfig, insts: u64) -> bfetch_sim::RunResult {
    SimSession::new(cfg.clone())
        .instructions(insts)
        .run_one(p)
        .unwrap_or_else(|e| panic!("{e}"))
        .into_single()
}

fn cases(default: usize) -> usize {
    bfetch_prng::cases(if cfg!(feature = "proptests") {
        default * 8
    } else {
        default
    })
}

/// A random but structurally valid instruction.
fn arb_inst(r: &mut Pcg32, len: usize) -> Inst {
    let reg = |r: &mut Pcg32| Reg::from_index(r.gen_range(32) as usize).expect("valid");
    match r.gen_range(10) {
        0 => Inst::Add {
            rd: reg(r),
            ra: reg(r),
            rb: reg(r),
        },
        1 => Inst::Mul {
            rd: reg(r),
            ra: reg(r),
            rb: reg(r),
        },
        2 => Inst::AddI {
            rd: reg(r),
            rs: reg(r),
            imm: r.range_i64(-256, 256),
        },
        3 => Inst::LoadImm {
            rd: reg(r),
            imm: r.range_i64(0, 0x10_0000),
        },
        4 => Inst::Load {
            rd: reg(r),
            base: reg(r),
            offset: r.range_i64(0, 4096),
        },
        5 => Inst::Store {
            rs: reg(r),
            base: reg(r),
            offset: r.range_i64(0, 4096),
        },
        6 => Inst::Beq {
            ra: reg(r),
            rb: reg(r),
            target: r.gen_range(len as u64) as usize,
        },
        7 => Inst::Bne {
            ra: reg(r),
            rb: reg(r),
            target: r.gen_range(len as u64) as usize,
        },
        8 => {
            let rd = reg(r);
            Inst::SllI {
                rd,
                rs: rd,
                sh: r.gen_range(64) as u8,
            }
        }
        _ => Inst::Nop,
    }
}

fn arb_program(r: &mut Pcg32) -> Program {
    let len = r.range(8, 64) as usize;
    let insts = (0..len).map(|_| arb_inst(r, len)).collect();
    Program::new("fuzz", insts, vec![])
}

fn quick(kind: PrefetcherKind) -> SimConfig {
    SimConfig::baseline().with_prefetcher(kind).with_warmup(500)
}

/// Any random program completes its instruction quota with a plausible
/// IPC under the baseline configuration.
#[test]
fn random_programs_complete() {
    for case in 0..cases(48) as u64 {
        let mut rng = Pcg32::new(0x5_1e55_0001 ^ case);
        let p = arb_program(&mut rng);
        let r = run_single(&p, &quick(PrefetcherKind::None), 3_000);
        assert!(r.instructions >= 3_000);
        assert!(r.ipc() > 0.0 && r.ipc() <= 4.0);
    }
}

/// The B-Fetch engine never corrupts execution: committed instruction
/// streams and cycle counts are deterministic, and IPC is not absurd.
#[test]
fn random_programs_with_bfetch() {
    for case in 0..cases(48) as u64 {
        let mut rng = Pcg32::new(0x5_1e55_0002 ^ case);
        let p = arb_program(&mut rng);
        let a = run_single(&p, &quick(PrefetcherKind::BFetch), 2_000);
        let b = run_single(&p, &quick(PrefetcherKind::BFetch), 2_000);
        assert_eq!(a.cycles, b.cycles, "nondeterminism detected");
        assert!(a.ipc() > 0.0 && a.ipc() <= 4.0);
    }
}

/// Every prefetcher survives arbitrary access patterns.
#[test]
fn random_programs_all_prefetchers() {
    for case in 0..cases(48) as u64 {
        let mut rng = Pcg32::new(0x5_1e55_0003 ^ case);
        let p = arb_program(&mut rng);
        let kind = [
            PrefetcherKind::Stride,
            PrefetcherKind::Sms,
            PrefetcherKind::Isb,
            PrefetcherKind::NextN(2),
        ][rng.gen_range(4) as usize];
        let r = run_single(&p, &quick(kind), 2_000);
        assert!(r.instructions >= 2_000);
    }
}

/// The perceptron predictor path is as robust as the tournament path.
#[test]
fn random_programs_perceptron() {
    for case in 0..cases(48) as u64 {
        let mut rng = Pcg32::new(0x5_1e55_0004 ^ case);
        let p = arb_program(&mut rng);
        let cfg = quick(PrefetcherKind::BFetch).with_predictor(PredictorKind::Perceptron);
        let r = run_single(&p, &cfg, 2_000);
        assert!(r.instructions >= 2_000);
    }
}
