//! Random-program stress tests: arbitrary (valid) instruction sequences
//! must run through the full timing pipeline without panics, deadlocks or
//! IPC anomalies, under every prefetcher.

use bfetch_isa::{Inst, Program, Reg};
use bfetch_sim::{run_single, PredictorKind, PrefetcherKind, SimConfig};
use proptest::prelude::*;

/// Strategy: a random but structurally valid instruction.
fn arb_inst(len: usize) -> impl Strategy<Value = Inst> {
    let reg = (0usize..32).prop_map(|i| Reg::from_index(i).expect("valid"));
    let target = 0usize..len;
    prop_oneof![
        (reg.clone(), reg.clone(), reg.clone()).prop_map(|(rd, ra, rb)| Inst::Add { rd, ra, rb }),
        (reg.clone(), reg.clone(), reg.clone()).prop_map(|(rd, ra, rb)| Inst::Mul { rd, ra, rb }),
        (reg.clone(), reg.clone(), -256i64..256).prop_map(|(rd, rs, imm)| Inst::AddI {
            rd,
            rs,
            imm
        }),
        (reg.clone(), 0i64..0x10_0000).prop_map(|(rd, imm)| Inst::LoadImm { rd, imm }),
        (reg.clone(), reg.clone(), 0i64..4096).prop_map(|(rd, base, offset)| Inst::Load {
            rd,
            base,
            offset
        }),
        (reg.clone(), reg.clone(), 0i64..4096).prop_map(|(rs, base, offset)| Inst::Store {
            rs,
            base,
            offset
        }),
        (reg.clone(), reg.clone(), target.clone()).prop_map(|(ra, rb, target)| Inst::Beq {
            ra,
            rb,
            target
        }),
        (reg.clone(), reg.clone(), target.clone()).prop_map(|(ra, rb, target)| Inst::Bne {
            ra,
            rb,
            target
        }),
        (reg, (0u8..64)).prop_map(|(rd, sh)| Inst::SllI { rd, rs: rd, sh }),
        Just(Inst::Nop),
    ]
}

fn arb_program() -> impl Strategy<Value = Program> {
    (8usize..64).prop_flat_map(|len| {
        prop::collection::vec(arb_inst(len), len)
            .prop_map(|insts| Program::new("fuzz", insts, vec![]))
    })
}

fn quick(kind: PrefetcherKind) -> SimConfig {
    let mut c = SimConfig::baseline().with_prefetcher(kind);
    c.warmup_insts = 500;
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any random program completes its instruction quota with a plausible
    /// IPC under the baseline configuration.
    #[test]
    fn random_programs_complete(p in arb_program()) {
        let r = run_single(&p, &quick(PrefetcherKind::None), 3_000);
        prop_assert!(r.instructions >= 3_000);
        prop_assert!(r.ipc() > 0.0 && r.ipc() <= 4.0);
    }

    /// The B-Fetch engine never corrupts execution: committed instruction
    /// streams and cycle counts are deterministic, and IPC is not absurd.
    #[test]
    fn random_programs_with_bfetch(p in arb_program()) {
        let a = run_single(&p, &quick(PrefetcherKind::BFetch), 2_000);
        let b = run_single(&p, &quick(PrefetcherKind::BFetch), 2_000);
        prop_assert_eq!(a.cycles, b.cycles, "nondeterminism detected");
        prop_assert!(a.ipc() > 0.0 && a.ipc() <= 4.0);
    }

    /// Every prefetcher survives arbitrary access patterns.
    #[test]
    fn random_programs_all_prefetchers(p in arb_program(), which in 0usize..4) {
        let kind = [
            PrefetcherKind::Stride,
            PrefetcherKind::Sms,
            PrefetcherKind::Isb,
            PrefetcherKind::NextN(2),
        ][which];
        let r = run_single(&p, &quick(kind), 2_000);
        prop_assert!(r.instructions >= 2_000);
    }

    /// The perceptron predictor path is as robust as the tournament path.
    #[test]
    fn random_programs_perceptron(p in arb_program()) {
        let mut cfg = quick(PrefetcherKind::BFetch);
        cfg.predictor = PredictorKind::Perceptron;
        let r = run_single(&p, &cfg, 2_000);
        prop_assert!(r.instructions >= 2_000);
    }
}
