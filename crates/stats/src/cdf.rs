//! Empirical cumulative distribution functions (Figure 3 support).

/// An empirical CDF over `u64` sample values, bucketed exactly.
///
/// Used to regenerate Figure 3 of the paper: the cumulative distribution of
/// register-content / effective-address variation across basic blocks,
/// expressed at cache-block (64 B) granularity, with everything at or above
/// a saturation bucket (`≥ 33` in the paper) collapsed into the final point.
///
/// # Example
///
/// ```
/// use bfetch_stats::Cdf;
/// let mut c = Cdf::new();
/// for v in [0, 0, 1, 2, 40] { c.add(v); }
/// assert_eq!(c.count(), 5);
/// assert!((c.fraction_at_or_below(1) - 0.6).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Cdf {
    samples: Vec<u64>,
    sorted: bool,
}

impl Cdf {
    /// Creates an empty CDF.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sample.
    pub fn add(&mut self, v: u64) {
        self.samples.push(v);
        self.sorted = false;
    }

    /// Number of samples collected.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
    }

    /// Fraction of samples `<= v`; `0.0` when empty.
    pub fn fraction_at_or_below(&mut self, v: u64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let n = self.samples.partition_point(|&s| s <= v);
        n as f64 / self.samples.len() as f64
    }

    /// Folds another distribution's samples into this one.
    pub fn merge(&mut self, other: &Cdf) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }

    /// The series `(x, F(x))` for `x` in `0..=max_x`, suitable for plotting.
    /// Values above `max_x` appear only in the overall normalization (the
    /// curve therefore may not reach 1.0 at `max_x`, exactly as in Fig 3's
    /// `≥ 33` tail).
    pub fn series(&mut self, max_x: u64) -> Vec<(u64, f64)> {
        (0..=max_x)
            .map(|x| (x, self.fraction_at_or_below(x)))
            .collect()
    }
}

impl FromIterator<u64> for Cdf {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        let mut c = Cdf::new();
        for v in iter {
            c.add(v);
        }
        c
    }
}

impl Extend<u64> for Cdf {
    fn extend<I: IntoIterator<Item = u64>>(&mut self, iter: I) {
        for v in iter {
            self.add(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_cdf_is_zero() {
        let mut c = Cdf::new();
        assert_eq!(c.fraction_at_or_below(100), 0.0);
        assert_eq!(c.count(), 0);
    }

    #[test]
    fn monotone_nondecreasing() {
        let mut c: Cdf = [5u64, 3, 3, 10, 0, 7].into_iter().collect();
        let s = c.series(12);
        for w in s.windows(2) {
            assert!(w[0].1 <= w[1].1, "CDF must be monotone");
        }
        assert_eq!(s.last().unwrap().1, 1.0);
    }

    #[test]
    fn tail_mass_beyond_max_x() {
        let mut c: Cdf = [1u64, 2, 100].into_iter().collect();
        let s = c.series(10);
        assert!((s.last().unwrap().1 - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn interleaved_add_and_query() {
        let mut c = Cdf::new();
        c.add(1);
        assert_eq!(c.fraction_at_or_below(1), 1.0);
        c.add(5);
        assert_eq!(c.fraction_at_or_below(1), 0.5);
    }
}
