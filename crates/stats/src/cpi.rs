//! Top-down CPI-stack cycle accounting and interval timeline telemetry.
//!
//! A run's aggregate IPC says *how fast* a core went; it cannot say *where
//! the cycles went*. This module provides the missing decomposition: every
//! cycle a core fails to commit its full width, the lost commit slots are
//! charged to exactly one root cause (a [`CpiComponent`]), accumulated in
//! a [`CpiStack`]. Because each cycle contributes `width` slots that are
//! either committed or charged to a single component, the stack satisfies
//!
//! ```text
//! committed_slots + Σ lost[c]  ==  commit_width × cycles
//! ```
//!
//! by construction ([`CpiStack::holds_invariant`]), so the per-component
//! CPI contributions sum exactly to the measured CPI — a "speedup came
//! from shrinking the memory component" claim is checkable arithmetic,
//! not an estimate.
//!
//! On top of the stack, an interval sampler (driven by the simulator core)
//! snapshots the stack plus key memory/branch counters every
//! `timeline_interval` committed instructions into [`TimelineSample`]s,
//! making phase behaviour — warmup tails, pointer-chase bursts, prefetch
//! ramp-up — visible as a time series exportable as JSONL or CSV.
//!
//! Like the [`trace`](crate::trace) module, the accounting is opt-in via
//! [`CpiConfig`] and the simulator takes identical code paths when it is
//! disabled.
//!
//! # Example
//!
//! ```
//! use bfetch_stats::cpi::{CpiComponent, CpiStack};
//!
//! let mut stack = CpiStack::new(4);
//! stack.account_cycle(4, CpiComponent::Base);          // full-width commit
//! stack.account_cycle(1, CpiComponent::MemDram);       // 3 slots lost to DRAM
//! stack.account_cycle(0, CpiComponent::Mispredict);    // redirect drain
//! assert!(stack.holds_invariant());
//! assert_eq!(stack.total_slots(), 4 * 3);
//! assert_eq!(stack.lost[CpiComponent::MemDram as usize], 3);
//! ```

use crate::registry::StatsRegistry;

/// The single root cause a cycle's lost commit slots are charged to.
///
/// The discriminants index [`CpiStack::lost`]; `COUNT` is the array
/// length. Charging rules (who decides which component a stall belongs
/// to) live in the simulator core and are documented in DESIGN.md
/// ("Cycle accounting & timeline").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum CpiComponent {
    /// Issue-width, dependence-chain and execute-latency limits — the
    /// residual after every attributable structural/memory cause.
    Base = 0,
    /// Fetch squashed behind an unresolved mispredicted branch, or the
    /// post-resolution redirect penalty.
    Mispredict = 1,
    /// Frontend starvation from an L1I miss or a BTB-miss decode redirect,
    /// or pipeline refill after a full drain.
    FetchStall = 2,
    /// A long non-memory dependence stalled commit while the ROB was full
    /// (window-limited).
    RobFull = 3,
    /// The oldest instruction was delayed by load/store port contention
    /// (the LSQ drain rate).
    LsqFull = 4,
    /// The oldest load's miss could not issue downstream because the
    /// demand MSHR file was full (structural memory stall).
    MshrFull = 5,
    /// Oldest load waiting on a fill serviced by the L2.
    MemL2 = 6,
    /// As [`CpiComponent::MemL2`], but the load merged with an in-flight
    /// prefetch that had already absorbed part of the latency.
    MemL2Covered = 7,
    /// Oldest load waiting on a fill serviced by the shared L3.
    MemL3 = 8,
    /// As [`CpiComponent::MemL3`], prefetch-covered.
    MemL3Covered = 9,
    /// Oldest load waiting on a DRAM fill.
    MemDram = 10,
    /// As [`CpiComponent::MemDram`], prefetch-covered.
    MemDramCovered = 11,
}

impl CpiComponent {
    /// Number of components (the length of [`CpiStack::lost`]).
    pub const COUNT: usize = 12;

    /// Every component in discriminant order.
    pub const ALL: [CpiComponent; CpiComponent::COUNT] = [
        CpiComponent::Base,
        CpiComponent::Mispredict,
        CpiComponent::FetchStall,
        CpiComponent::RobFull,
        CpiComponent::LsqFull,
        CpiComponent::MshrFull,
        CpiComponent::MemL2,
        CpiComponent::MemL2Covered,
        CpiComponent::MemL3,
        CpiComponent::MemL3Covered,
        CpiComponent::MemDram,
        CpiComponent::MemDramCovered,
    ];

    /// Stable snake_case token used in registry keys and exports.
    pub fn as_str(self) -> &'static str {
        match self {
            CpiComponent::Base => "base",
            CpiComponent::Mispredict => "mispredict",
            CpiComponent::FetchStall => "fetch_stall",
            CpiComponent::RobFull => "rob_full",
            CpiComponent::LsqFull => "lsq_full",
            CpiComponent::MshrFull => "mshr_full",
            CpiComponent::MemL2 => "mem_l2",
            CpiComponent::MemL2Covered => "mem_l2_covered",
            CpiComponent::MemL3 => "mem_l3",
            CpiComponent::MemL3Covered => "mem_l3_covered",
            CpiComponent::MemDram => "mem_dram",
            CpiComponent::MemDramCovered => "mem_dram_covered",
        }
    }

    /// Whether this is one of the six memory-latency components.
    pub fn is_memory(self) -> bool {
        (self as usize) >= CpiComponent::MemL2 as usize
    }

    /// Whether this memory component was partially covered by an
    /// in-flight prefetch (`false` for non-memory components).
    pub fn is_covered(self) -> bool {
        matches!(
            self,
            CpiComponent::MemL2Covered | CpiComponent::MemL3Covered | CpiComponent::MemDramCovered
        )
    }
}

/// Cycle-accounting options carried by the simulator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpiConfig {
    /// Account lost commit slots. Off by default; when off the simulation
    /// takes the exact same timing paths as before this module existed.
    pub enabled: bool,
    /// Emit a [`TimelineSample`] every this many committed instructions
    /// (`0` disables the sampler; the stack still accumulates).
    pub timeline_interval: u64,
}

impl Default for CpiConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            timeline_interval: 20_000,
        }
    }
}

impl CpiConfig {
    /// Accounting on with the default sampling interval.
    pub fn on() -> Self {
        Self {
            enabled: true,
            ..Self::default()
        }
    }
}

/// Lost-commit-slot tallies for one core over an accounting window.
///
/// See the [module docs](self) for the sum invariant. The struct is plain
/// `Copy` data so measurement windows are snapshot/delta like every other
/// stat block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CpiStack {
    /// The commit width the slots are measured against.
    pub width: u64,
    /// Cycles accounted.
    pub cycles: u64,
    /// Slots that committed an instruction (equals instructions committed
    /// in the window).
    pub committed_slots: u64,
    /// Lost slots per component, indexed by [`CpiComponent`] discriminant.
    pub lost: [u64; CpiComponent::COUNT],
}

impl CpiStack {
    /// An empty stack for a `width`-wide core.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new(width: u64) -> Self {
        assert!(width > 0, "commit width must be nonzero");
        Self {
            width,
            ..Self::default()
        }
    }

    /// Accounts one cycle: `committed` slots did useful work, and the
    /// remaining `width − committed` are all charged to `cause`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `committed` exceeds the width.
    #[inline]
    pub fn account_cycle(&mut self, committed: u64, cause: CpiComponent) {
        debug_assert!(committed <= self.width, "committed beyond width");
        self.cycles += 1;
        self.committed_slots += committed;
        let lost = self.width - committed;
        if lost > 0 {
            self.lost[cause as usize] += lost;
        }
    }

    /// Total lost slots across all components.
    pub fn lost_total(&self) -> u64 {
        self.lost.iter().sum()
    }

    /// Total slots accounted (committed + lost).
    pub fn total_slots(&self) -> u64 {
        self.committed_slots + self.lost_total()
    }

    /// The one-cause-per-slot invariant: every slot of every cycle is
    /// accounted exactly once.
    pub fn holds_invariant(&self) -> bool {
        self.total_slots() == self.width * self.cycles
    }

    /// Overall CPI for the window (`0.0` before anything committed).
    pub fn cpi(&self) -> f64 {
        if self.committed_slots == 0 {
            0.0
        } else {
            self.cycles as f64 / self.committed_slots as f64
        }
    }

    /// The ideal CPI floor a `width`-wide machine pays per instruction
    /// (`1 / width`); the "commit" segment of the stack.
    pub fn commit_cpi(&self) -> f64 {
        1.0 / self.width as f64
    }

    /// CPI contributed by `c`: `lost[c] / (width × instructions)`.
    /// `commit_cpi() + Σ component_cpi(c)` equals [`CpiStack::cpi`]
    /// exactly (when the invariant holds).
    pub fn component_cpi(&self, c: CpiComponent) -> f64 {
        if self.committed_slots == 0 {
            0.0
        } else {
            self.lost[c as usize] as f64 / (self.width * self.committed_slots) as f64
        }
    }

    /// CPI summed over the six memory components (the "memory stall"
    /// segment a prefetcher attacks).
    pub fn memory_cpi(&self) -> f64 {
        CpiComponent::ALL
            .iter()
            .filter(|c| c.is_memory())
            .map(|&c| self.component_cpi(c))
            .sum()
    }

    /// Component-wise difference `self − earlier` over a sub-window.
    ///
    /// # Panics
    ///
    /// Panics (debug) on mismatched widths.
    pub fn delta(&self, earlier: &CpiStack) -> CpiStack {
        debug_assert_eq!(self.width, earlier.width, "window width changed");
        let mut lost = [0u64; CpiComponent::COUNT];
        for (slot, (a, b)) in lost.iter_mut().zip(self.lost.iter().zip(earlier.lost)) {
            *slot = a - b;
        }
        CpiStack {
            width: self.width,
            cycles: self.cycles - earlier.cycles,
            committed_slots: self.committed_slots - earlier.committed_slots,
            lost,
        }
    }

    /// Sums two cores' stacks (for whole-CMP aggregates; widths must
    /// match).
    pub fn combined(&self, other: &CpiStack) -> CpiStack {
        debug_assert_eq!(self.width, other.width, "mixed-width combine");
        let mut out = *self;
        out.cycles += other.cycles;
        out.committed_slots += other.committed_slots;
        for (slot, o) in out.lost.iter_mut().zip(other.lost) {
            *slot += o;
        }
        out
    }

    /// Flattens the stack into `registry` under the `cpi.` prefix:
    /// `cpi.width`, `cpi.cycles`, `cpi.slots.committed`, and one
    /// `cpi.slots.<component>` per [`CpiComponent`].
    pub fn fill_registry(&self, registry: &mut StatsRegistry) {
        registry.set("cpi.width", self.width);
        registry.set("cpi.cycles", self.cycles);
        registry.set("cpi.slots.committed", self.committed_slots);
        for c in CpiComponent::ALL {
            registry.set(format!("cpi.slots.{}", c.as_str()), self.lost[c as usize]);
        }
    }
}

/// One interval snapshot of a core's behaviour: where the window's commit
/// slots went plus the memory/branch counters needed for IPC, MPKI and
/// prefetch accuracy/coverage over the interval.
///
/// All fields are exact `u64` tallies over the *interval* (not cumulative,
/// except `cycle`/`instructions` which locate the sample in the run); the
/// derived-metric methods compute the ratios on demand so nothing is lost
/// to rounding in storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimelineSample {
    /// Core the sample belongs to.
    pub core: u32,
    /// Sample index within the core's series (0-based).
    pub index: u32,
    /// Cycles since accounting was enabled, at sample time.
    pub cycle: u64,
    /// Instructions committed since accounting was enabled, at sample time.
    pub instructions: u64,
    /// Cycles elapsed in this interval.
    pub interval_cycles: u64,
    /// Instructions committed in this interval.
    pub interval_instructions: u64,
    /// Conditional-branch mispredicts in this interval.
    pub interval_mispredicts: u64,
    /// L1D demand misses in this interval.
    pub interval_l1d_misses: u64,
    /// Prefetched lines first-touched by demand in this interval.
    pub interval_pf_useful: u64,
    /// Prefetched lines evicted untouched in this interval.
    pub interval_pf_useless: u64,
    /// Demand accesses that merged with in-flight prefetches in this
    /// interval (late prefetches; a subset of `interval_l1d_misses`).
    pub interval_pf_late: u64,
    /// Lost commit slots per [`CpiComponent`] in this interval.
    pub lost: [u64; CpiComponent::COUNT],
}

impl TimelineSample {
    /// Instructions per cycle over the interval.
    pub fn ipc(&self) -> f64 {
        if self.interval_cycles == 0 {
            0.0
        } else {
            self.interval_instructions as f64 / self.interval_cycles as f64
        }
    }

    /// L1D misses per kilo-instruction over the interval.
    pub fn mpki(&self) -> f64 {
        if self.interval_instructions == 0 {
            0.0
        } else {
            self.interval_l1d_misses as f64 * 1000.0 / self.interval_instructions as f64
        }
    }

    /// Prefetch accuracy over the interval: `useful / (useful + useless)`.
    pub fn pf_accuracy(&self) -> f64 {
        let judged = self.interval_pf_useful + self.interval_pf_useless;
        if judged == 0 {
            0.0
        } else {
            self.interval_pf_useful as f64 / judged as f64
        }
    }

    /// Prefetch coverage over the interval:
    /// `useful / (useful + uncovered demand misses)`, where uncovered
    /// demand misses are L1D misses minus late-prefetch merges.
    pub fn pf_coverage(&self) -> f64 {
        let uncovered = self.interval_l1d_misses - self.interval_pf_late.min(self.interval_l1d_misses);
        let den = self.interval_pf_useful + uncovered;
        if den == 0 {
            0.0
        } else {
            self.interval_pf_useful as f64 / den as f64
        }
    }

    /// Serialises the sample as one line of JSON with a fixed key order
    /// (schema documented in DESIGN.md "Cycle accounting & timeline").
    pub fn to_json_line(&self) -> String {
        use std::fmt::Write;
        let mut out = format!(
            "{{\"event\":\"timeline_sample\",\"core\":{},\"index\":{},\"cycle\":{},\
             \"instructions\":{},\"interval_cycles\":{},\"interval_instructions\":{},\
             \"ipc\":{:.4},\"mpki\":{:.3},\"mispredicts\":{},\"l1d_misses\":{},\
             \"pf_accuracy\":{:.4},\"pf_coverage\":{:.4},\"lost\":{{",
            self.core,
            self.index,
            self.cycle,
            self.instructions,
            self.interval_cycles,
            self.interval_instructions,
            self.ipc(),
            self.mpki(),
            self.interval_mispredicts,
            self.interval_l1d_misses,
            self.pf_accuracy(),
            self.pf_coverage(),
        );
        for (i, c) in CpiComponent::ALL.into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", c.as_str(), self.lost[c as usize]);
        }
        out.push_str("}}");
        out
    }

    /// The CSV column names matching [`TimelineSample::csv_row`].
    pub fn csv_header() -> String {
        let mut out = String::from(
            "core,index,cycle,instructions,interval_cycles,interval_instructions,\
             ipc,mpki,mispredicts,l1d_misses,pf_accuracy,pf_coverage",
        );
        for c in CpiComponent::ALL {
            out.push_str(",lost_");
            out.push_str(c.as_str());
        }
        out
    }

    /// Serialises the sample as one CSV row (column order of
    /// [`TimelineSample::csv_header`]).
    pub fn csv_row(&self) -> String {
        use std::fmt::Write;
        let mut out = format!(
            "{},{},{},{},{},{},{:.4},{:.3},{},{},{:.4},{:.4}",
            self.core,
            self.index,
            self.cycle,
            self.instructions,
            self.interval_cycles,
            self.interval_instructions,
            self.ipc(),
            self.mpki(),
            self.interval_mispredicts,
            self.interval_l1d_misses,
            self.pf_accuracy(),
            self.pf_coverage(),
        );
        for c in CpiComponent::ALL {
            let _ = write!(out, ",{}", self.lost[c as usize]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TimelineSample {
        let mut lost = [0u64; CpiComponent::COUNT];
        lost[CpiComponent::MemDram as usize] = 300;
        lost[CpiComponent::Mispredict as usize] = 100;
        TimelineSample {
            core: 0,
            index: 2,
            cycle: 3_000,
            instructions: 6_000,
            interval_cycles: 1_000,
            interval_instructions: 2_000,
            interval_mispredicts: 10,
            interval_l1d_misses: 40,
            interval_pf_useful: 30,
            interval_pf_useless: 10,
            interval_pf_late: 20,
            lost,
        }
    }

    #[test]
    fn invariant_holds_by_construction() {
        let mut s = CpiStack::new(4);
        s.account_cycle(4, CpiComponent::Base);
        s.account_cycle(2, CpiComponent::MemDram);
        s.account_cycle(0, CpiComponent::Mispredict);
        s.account_cycle(3, CpiComponent::RobFull);
        assert!(s.holds_invariant());
        assert_eq!(s.total_slots(), 16);
        assert_eq!(s.committed_slots, 9);
        assert_eq!(s.lost[CpiComponent::MemDram as usize], 2);
        assert_eq!(s.lost[CpiComponent::Mispredict as usize], 4);
        assert_eq!(s.lost[CpiComponent::RobFull as usize], 1);
    }

    #[test]
    fn component_cpis_sum_to_total_cpi() {
        let mut s = CpiStack::new(4);
        s.account_cycle(4, CpiComponent::Base);
        s.account_cycle(1, CpiComponent::MemL3);
        s.account_cycle(2, CpiComponent::LsqFull);
        s.account_cycle(0, CpiComponent::FetchStall);
        let parts: f64 = CpiComponent::ALL.iter().map(|&c| s.component_cpi(c)).sum();
        assert!((s.commit_cpi() + parts - s.cpi()).abs() < 1e-12);
        assert!(s.memory_cpi() > 0.0);
    }

    #[test]
    fn delta_and_combined_are_componentwise() {
        let mut a = CpiStack::new(4);
        a.account_cycle(1, CpiComponent::MemDram);
        let snap = a;
        a.account_cycle(2, CpiComponent::MemL2Covered);
        let d = a.delta(&snap);
        assert_eq!(d.cycles, 1);
        assert_eq!(d.committed_slots, 2);
        assert_eq!(d.lost[CpiComponent::MemL2Covered as usize], 2);
        assert_eq!(d.lost[CpiComponent::MemDram as usize], 0);
        assert!(d.holds_invariant());
        let c = snap.combined(&d);
        assert_eq!(c, a);
    }

    #[test]
    fn registry_keys_cover_every_component() {
        let mut s = CpiStack::new(4);
        s.account_cycle(0, CpiComponent::MshrFull);
        let mut r = StatsRegistry::new();
        s.fill_registry(&mut r);
        assert_eq!(r.get("cpi.width"), 4);
        assert_eq!(r.get("cpi.cycles"), 1);
        assert_eq!(r.get("cpi.slots.mshr_full"), 4);
        for c in CpiComponent::ALL {
            assert!(r.contains(&format!("cpi.slots.{}", c.as_str())));
        }
    }

    #[test]
    fn component_tokens_are_unique_and_ordered() {
        let mut seen = std::collections::BTreeSet::new();
        for (i, c) in CpiComponent::ALL.into_iter().enumerate() {
            assert_eq!(c as usize, i, "ALL must follow discriminant order");
            assert!(seen.insert(c.as_str()), "duplicate token {}", c.as_str());
        }
        assert!(CpiComponent::MemDramCovered.is_memory());
        assert!(CpiComponent::MemDramCovered.is_covered());
        assert!(!CpiComponent::MshrFull.is_memory());
        assert!(!CpiComponent::MemL3.is_covered());
    }

    #[test]
    fn sample_metrics_match_hand_computed_values() {
        let s = sample();
        assert!((s.ipc() - 2.0).abs() < 1e-12);
        assert!((s.mpki() - 20.0).abs() < 1e-12);
        assert!((s.pf_accuracy() - 0.75).abs() < 1e-12);
        // uncovered demand misses = 40 - 20 = 20; coverage = 30 / 50
        assert!((s.pf_coverage() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn sample_export_shapes_are_stable() {
        let s = sample();
        let line = s.to_json_line();
        assert!(line.starts_with("{\"event\":\"timeline_sample\",\"core\":0,\"index\":2,"));
        assert!(line.contains("\"ipc\":2.0000"));
        assert!(line.contains("\"lost\":{\"base\":0,"));
        assert!(line.ends_with("\"mem_dram\":300,\"mem_dram_covered\":0}}"));
        let header = TimelineSample::csv_header();
        let row = s.csv_row();
        assert_eq!(
            header.split(',').count(),
            row.split(',').count(),
            "header/row column mismatch"
        );
        assert!(header.ends_with("lost_mem_dram,lost_mem_dram_covered"));
        assert!(row.starts_with("0,2,3000,6000,1000,2000,2.0000,20.000,10,40,"));
    }

    #[test]
    fn config_defaults_off() {
        assert!(!CpiConfig::default().enabled);
        let on = CpiConfig::on();
        assert!(on.enabled && on.timeline_interval > 0);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_width_rejected() {
        CpiStack::new(0);
    }
}
