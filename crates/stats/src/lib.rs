//! # bfetch-stats
//!
//! Statistics utilities shared across the B-Fetch reproduction: mean
//! aggregators (geometric mean for speedups, as used throughout the paper's
//! evaluation), the weighted-speedup metric for multiprogrammed workloads
//! (Section V-A), empirical CDFs (Figure 3), and plain-text table rendering
//! for the figure/table regeneration binaries.
//!
//! It also hosts the simulator-wide observability layer: [`registry`]
//! (named hierarchical counters with snapshot/delta), [`trace`]
//! (cycle-stamped prefetch-lifecycle events and the derived
//! accuracy/coverage/timeliness metrics), and [`cpi`] (top-down
//! CPI-stack cycle accounting with the one-cause-per-slot invariant,
//! plus interval timeline samples).
//!
//! # Example
//!
//! ```
//! use bfetch_stats::{geomean, weighted_speedup};
//! let speedups = [1.2, 1.5, 1.0];
//! assert!((geomean(&speedups) - 1.216).abs() < 0.01);
//! let ws = weighted_speedup(&[(2.0, 1.0), (3.0, 3.0)]); // ipc_multi/ipc_single pairs
//! assert!((ws - 3.0).abs() < 1e-9);
//! ```

pub mod cdf;
pub mod cpi;
pub mod registry;
pub mod table;
pub mod trace;

pub use cdf::Cdf;
pub use cpi::{CpiComponent, CpiConfig, CpiStack, TimelineSample};
pub use registry::StatsRegistry;
pub use table::Table;
pub use trace::{
    DropReason, LifecycleCounts, LifecycleMetrics, ServiceLevel, TraceConfig, TraceEvent,
    TraceKind, TraceSink, Tracer,
};

/// Geometric mean of strictly positive values.
///
/// Returns `1.0` for an empty slice (the neutral speedup).
///
/// # Panics
///
/// Panics if any value is not strictly positive.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let mut log_sum = 0.0;
    for &v in values {
        assert!(v > 0.0, "geomean requires positive values, got {v}");
        log_sum += v.ln();
    }
    (log_sum / values.len() as f64).exp()
}

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// The multiprogrammed *weighted speedup* metric of Section V-A:
/// `Σ (IPC_multi / IPC_single)` over the applications in a mix.
///
/// Takes `(ipc_multi, ipc_single)` pairs.
///
/// # Panics
///
/// Panics if any solo IPC is not strictly positive.
pub fn weighted_speedup(pairs: &[(f64, f64)]) -> f64 {
    pairs
        .iter()
        .map(|&(multi, single)| {
            assert!(single > 0.0, "solo IPC must be positive");
            multi / single
        })
        .sum()
}

/// Ratio `a / b` guarded against a zero denominator (returns 0).
pub fn ratio(a: u64, b: u64) -> f64 {
    if b == 0 {
        0.0
    } else {
        a as f64 / b as f64
    }
}

/// Percentage `100 * a / b` guarded against a zero denominator.
pub fn percent(a: u64, b: u64) -> f64 {
    100.0 * ratio(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_identity_is_one() {
        assert_eq!(geomean(&[1.0, 1.0, 1.0]), 1.0);
        assert_eq!(geomean(&[]), 1.0);
    }

    #[test]
    fn geomean_matches_closed_form() {
        let g = geomean(&[2.0, 8.0]);
        assert!((g - 4.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_is_below_arithmetic_mean() {
        let v = [1.1, 2.3, 0.7, 5.0];
        assert!(geomean(&v) <= mean(&v));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_zero() {
        geomean(&[1.0, 0.0]);
    }

    #[test]
    fn weighted_speedup_solo_equals_count() {
        // each app running as fast as solo => ws == n
        let ws = weighted_speedup(&[(1.5, 1.5), (0.7, 0.7)]);
        assert!((ws - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ratio_guards_zero() {
        assert_eq!(ratio(5, 0), 0.0);
        assert_eq!(percent(1, 2), 50.0);
    }
}
