//! A simulator-wide registry of named hierarchical counters.
//!
//! Every component of the reproduction keeps its own flat stat struct
//! (`CacheStats`, `MemStats`, `EngineStats`, ...). The registry unifies
//! them behind dot-separated hierarchical names — `l1d.misses`,
//! `bfetch.stops.confidence`, `prefetch.useful` — so harness code and
//! external tooling can enumerate, diff and export every counter without
//! knowing each component's struct layout.
//!
//! Names sort lexicographically, which groups a component's counters
//! together; [`StatsRegistry::with_prefix`] selects one subtree.
//! [`StatsRegistry::snapshot`] + [`StatsRegistry::delta`] implement the
//! measurement-window discipline the per-component structs provide with
//! their hand-written `delta` methods, but generically.
//!
//! # Example
//!
//! ```
//! use bfetch_stats::StatsRegistry;
//!
//! let mut reg = StatsRegistry::new();
//! reg.add("l1d.misses", 3);
//! reg.add("l1d.hits", 10);
//! let warm = reg.snapshot();
//!
//! reg.add("l1d.misses", 2); // the measurement window
//! let window = reg.delta(&warm);
//! assert_eq!(window.get("l1d.misses"), 2);
//! assert_eq!(window.get("l1d.hits"), 0);
//!
//! let l1d: Vec<_> = reg.with_prefix("l1d.").collect();
//! assert_eq!(l1d, [("l1d.hits", 10), ("l1d.misses", 5)]);
//! ```

use std::collections::BTreeMap;

/// Named hierarchical `u64` counters with snapshot/delta support.
///
/// See the [module docs](self) for the naming convention and an example.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatsRegistry {
    counters: BTreeMap<String, u64>,
}

impl StatsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the counter `name`, creating it at zero first if it
    /// does not exist yet.
    pub fn add(&mut self, name: impl Into<String>, delta: u64) {
        *self.counters.entry(name.into()).or_insert(0) += delta;
    }

    /// Sets the counter `name` to `value`, creating it if needed.
    pub fn set(&mut self, name: impl Into<String>, value: u64) {
        self.counters.insert(name.into(), value);
    }

    /// Records a histogram as indexed counters `name.0`, `name.1`, ...
    /// (one per bucket), the convention used for e.g.
    /// `core.branch_fetch_hist`.
    pub fn set_hist(&mut self, name: &str, buckets: &[u64]) {
        for (i, &v) in buckets.iter().enumerate() {
            self.set(format!("{name}.{i}"), v);
        }
    }

    /// The counter's value; `0` if it was never recorded.
    pub fn get(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Whether `name` has been recorded.
    pub fn contains(&self, name: &str) -> bool {
        self.counters.contains_key(name)
    }

    /// Number of distinct counters.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Whether the registry holds no counters.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// All counters in lexicographic name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// The counters whose names start with `prefix`, in name order.
    pub fn with_prefix<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = (&'a str, u64)> {
        // BTreeMap range over the half-open prefix interval
        self.counters
            .range(prefix.to_string()..)
            .take_while(move |(k, _)| k.starts_with(prefix))
            .map(|(k, &v)| (k.as_str(), v))
    }

    /// A point-in-time copy, for later [`StatsRegistry::delta`].
    pub fn snapshot(&self) -> StatsRegistry {
        self.clone()
    }

    /// The name-wise difference `self − earlier` (counters absent from
    /// `earlier` count from zero; the subtraction saturates so a reset
    /// counter cannot underflow).
    pub fn delta(&self, earlier: &StatsRegistry) -> StatsRegistry {
        let counters = self
            .counters
            .iter()
            .map(|(k, &v)| (k.clone(), v.saturating_sub(earlier.get(k))))
            .collect();
        StatsRegistry { counters }
    }

    /// Merges `other` into `self`, summing counters that exist in both.
    pub fn merge(&mut self, other: &StatsRegistry) {
        for (k, v) in other.iter() {
            self.add(k, v);
        }
    }

    /// Removes the counter `name`, returning its value if it existed.
    pub fn remove(&mut self, name: &str) -> Option<u64> {
        self.counters.remove(name)
    }
}

/// Renders one `name value` line per counter, in name order.
impl std::fmt::Display for StatsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (name, value) in self.iter() {
            writeln!(f, "{name} {value}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_accumulates_and_get_defaults_to_zero() {
        let mut r = StatsRegistry::new();
        assert_eq!(r.get("nope"), 0);
        assert!(!r.contains("nope"));
        r.add("a.x", 1);
        r.add("a.x", 2);
        r.set("a.y", 7);
        assert_eq!(r.get("a.x"), 3);
        assert_eq!(r.get("a.y"), 7);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn snapshot_delta_is_a_measurement_window() {
        let mut r = StatsRegistry::new();
        r.add("m.loads", 10);
        let snap = r.snapshot();
        r.add("m.loads", 5);
        r.add("m.stores", 2); // born inside the window
        let d = r.delta(&snap);
        assert_eq!(d.get("m.loads"), 5);
        assert_eq!(d.get("m.stores"), 2);
        // the snapshot itself is unchanged
        assert_eq!(snap.get("m.loads"), 10);
    }

    #[test]
    fn delta_saturates_instead_of_underflowing() {
        let mut before = StatsRegistry::new();
        before.set("c", 10);
        let mut after = StatsRegistry::new();
        after.set("c", 3); // counter was reset between snapshots
        assert_eq!(after.delta(&before).get("c"), 0);
    }

    #[test]
    fn iteration_is_sorted_and_prefix_selects_subtrees() {
        let mut r = StatsRegistry::new();
        for name in ["l2.hits", "l1d.misses", "l1d.hits", "dram.reqs"] {
            r.set(name, 1);
        }
        let names: Vec<&str> = r.iter().map(|(k, _)| k).collect();
        assert_eq!(names, ["dram.reqs", "l1d.hits", "l1d.misses", "l2.hits"]);
        let l1d: Vec<&str> = r.with_prefix("l1d.").map(|(k, _)| k).collect();
        assert_eq!(l1d, ["l1d.hits", "l1d.misses"]);
        assert_eq!(r.with_prefix("l9.").count(), 0);
    }

    #[test]
    fn hist_expands_to_indexed_counters() {
        let mut r = StatsRegistry::new();
        r.set_hist("core.branch_fetch_hist", &[100, 40, 8]);
        assert_eq!(r.get("core.branch_fetch_hist.0"), 100);
        assert_eq!(r.get("core.branch_fetch_hist.2"), 8);
    }

    #[test]
    fn delta_drops_counters_absent_from_the_later_snapshot() {
        // delta() iterates only the *later* registry's counters, so a
        // counter that disappears between snapshots vanishes from the
        // window rather than reporting a negative or stale value — callers
        // comparing registries from different configurations (e.g. with
        // and without cpi.* keys) rely on this
        let mut before = StatsRegistry::new();
        before.set("kept", 1);
        before.set("gone", 5);
        let mut after = StatsRegistry::new();
        after.set("kept", 4);
        let d = after.delta(&before);
        assert_eq!(d.get("kept"), 3);
        assert!(!d.contains("gone"));
        assert_eq!(d.len(), 1);
        // the reverse direction: a counter born between snapshots counts
        // from zero and is present
        let d2 = before.delta(&after);
        assert_eq!(d2.get("gone"), 5);
        assert!(d2.contains("gone"));
    }

    #[test]
    fn hist_with_ten_or_more_buckets_orders_lexicographically() {
        // indexed counters sort as strings: "h.10" precedes "h.2". The
        // expansion itself is index-faithful (get() is unaffected), but
        // any consumer of iter()/Display must not assume numeric bucket
        // order past ten buckets
        let buckets: Vec<u64> = (0..12).collect();
        let mut r = StatsRegistry::new();
        r.set_hist("h", &buckets);
        for (i, &v) in buckets.iter().enumerate() {
            assert_eq!(r.get(&format!("h.{i}")), v);
        }
        let names: Vec<&str> = r.with_prefix("h.").map(|(k, _)| k).collect();
        assert_eq!(
            names,
            ["h.0", "h.1", "h.10", "h.11", "h.2", "h.3", "h.4", "h.5", "h.6", "h.7", "h.8",
             "h.9"]
        );
    }

    #[test]
    fn remove_returns_the_old_value() {
        let mut r = StatsRegistry::new();
        r.set("cpi.width", 4);
        assert_eq!(r.remove("cpi.width"), Some(4));
        assert_eq!(r.remove("cpi.width"), None);
        assert!(!r.contains("cpi.width"));
    }

    #[test]
    fn merge_sums_overlapping_counters() {
        let mut a = StatsRegistry::new();
        a.set("x", 1);
        let mut b = StatsRegistry::new();
        b.set("x", 2);
        b.set("y", 3);
        a.merge(&b);
        assert_eq!(a.get("x"), 3);
        assert_eq!(a.get("y"), 3);
    }

    #[test]
    fn display_is_one_line_per_counter() {
        let mut r = StatsRegistry::new();
        r.set("b", 2);
        r.set("a", 1);
        assert_eq!(r.to_string(), "a 1\nb 2\n");
    }
}
