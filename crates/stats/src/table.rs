//! Minimal plain-text table rendering for figure/table regeneration output.

use std::fmt;

/// A simple left-aligned text table with a header row.
///
/// # Example
///
/// ```
/// use bfetch_stats::Table;
/// let mut t = Table::new(vec!["bench".into(), "speedup".into()]);
/// t.row(vec!["mcf".into(), "1.31".into()]);
/// let s = t.to_string();
/// assert!(s.contains("mcf"));
/// assert!(s.contains("speedup"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: Vec<String>) -> Self {
        Self {
            header,
            rows: Vec::new(),
        }
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row's arity differs from the header's.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row arity must match header"
        );
        self.rows.push(cells);
    }

    /// Convenience: a row from displayable cells.
    pub fn row_display<T: fmt::Display>(&mut self, cells: &[T]) {
        self.row(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{c:<width$}", width = widths[i])?;
            }
            writeln!(f)
        };
        write_row(f, &self.header)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["a".into(), "bb".into()]);
        t.row(vec!["xxxx".into(), "1".into()]);
        t.row(vec!["y".into(), "22".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a "));
        assert!(lines[2].starts_with("xxxx"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(vec!["a".into()]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn row_display_formats() {
        let mut t = Table::new(vec!["v".into()]);
        t.row_display(&[1.25f64]);
        assert!(t.to_string().contains("1.25"));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }
}
