//! Prefetch-lifecycle event tracing.
//!
//! The figure binaries summarise each run with aggregate counters, but the
//! paper's accuracy / coverage / timeliness arguments (Sections V–VI) are
//! statements about individual prefetches: was the line *used* before
//! eviction, did the demand arrive *before* the fill, how many cycles of
//! lead time did the predictor-directed walk buy. This module records that
//! lifecycle as a stream of typed, cycle-stamped [`TraceEvent`]s:
//!
//! ```text
//! issued ─→ filled ─→ first_use          (timely, useful)
//!        ─→ mshr_merged                  (late but useful)
//!        ─→ filled ─→ evicted_unused     (useless / polluting)
//!        ─→ dropped(filter | queue_full | mshr_full | redundant)
//! ```
//!
//! Events land in a bounded ring buffer ([`TraceSink`]) so a long run keeps
//! the most recent window; per-core [`LifecycleCounts`] accumulate alongside
//! the ring and are therefore exact even after it wraps. The derived
//! [`LifecycleMetrics`] match the schema documented in `DESIGN.md`
//! ("Observability").
//!
//! Components hold a [`Tracer`] handle. Disabled (the default) it is a
//! `None` and every `emit` is a branch on an `Option` — no allocation, no
//! formatting, no shared state — which is what keeps untraced simulations
//! byte-identical to builds without this module.
//!
//! # Example
//!
//! ```
//! use bfetch_stats::trace::{TraceConfig, TraceKind, Tracer};
//!
//! let tracer = Tracer::enabled(&TraceConfig { enabled: true, capacity: 64 });
//! let t0 = tracer.for_core(0);
//! t0.emit(100, TraceKind::PrefetchIssued { line: 0x1000, pc_hash: 7 });
//! t0.emit(140, TraceKind::PrefetchFilled { line: 0x1000, pc_hash: 7 });
//! t0.emit(160, TraceKind::PrefetchFirstUse { line: 0x1000, pc_hash: 7, lead_cycles: 20 });
//!
//! let sink = tracer.finish().unwrap();
//! let m = sink.lifecycle(0).metrics();
//! assert_eq!(m.accuracy, 1.0);
//! assert_eq!(m.timeliness, 1.0);
//! assert_eq!(sink.events().count(), 3);
//! ```

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// Why the engine or memory system discarded a prefetch candidate before it
/// became an in-flight request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// The per-load filter rejected the candidate (low confidence or
    /// duplicate-window suppression).
    Filter,
    /// The engine's bounded request queue was full.
    QueueFull,
    /// No prefetch MSHR was free.
    MshrFull,
    /// The line was already cached or already in flight.
    Redundant,
}

impl DropReason {
    /// Stable snake_case token used in the JSONL export.
    pub fn as_str(self) -> &'static str {
        match self {
            DropReason::Filter => "filter",
            DropReason::QueueFull => "queue_full",
            DropReason::MshrFull => "mshr_full",
            DropReason::Redundant => "redundant",
        }
    }
}

/// Where a demand miss was ultimately serviced from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceLevel {
    /// Merged with a request already outstanding in an MSHR.
    InFlight,
    /// Filled from the shared L2.
    L2,
    /// Filled from the shared L3.
    L3,
    /// Filled from DRAM.
    Dram,
}

impl ServiceLevel {
    /// Stable snake_case token used in the JSONL export.
    pub fn as_str(self) -> &'static str {
        match self {
            ServiceLevel::InFlight => "in_flight",
            ServiceLevel::L2 => "l2",
            ServiceLevel::L3 => "l3",
            ServiceLevel::Dram => "dram",
        }
    }
}

/// The payload of a trace event. Field units: `cycle`/`lead_cycles`/
/// `remaining_cycles` are core clock cycles; `line` is the byte address of
/// a 64 B-aligned cache line; `pc` is a byte address; `pc_hash` is the
/// 10-bit load-PC hash the B-Fetch filter uses; `confidence` is the path
/// confidence estimate in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceKind {
    /// A conditional branch entered fetch with a direction prediction.
    BranchPredicted { pc: u64, taken: bool, confidence: f64 },
    /// A branch committed; `mispredicted` compares predicted vs actual
    /// direction.
    BranchResolved { pc: u64, taken: bool, mispredicted: bool },
    /// A B-Fetch candidate left the engine queue and entered the memory
    /// system.
    PrefetchIssued { line: u64, pc_hash: u16 },
    /// A candidate was discarded before issue.
    PrefetchDropped { line: u64, pc_hash: u16, reason: DropReason },
    /// A demand access found its line already in flight under a prefetch
    /// MSHR — a *late* (but still useful) prefetch. `remaining_cycles` is
    /// how long the demand still had to wait for the fill.
    PrefetchMshrMerged { line: u64, pc_hash: u16, remaining_cycles: u64 },
    /// A prefetched line was installed in the L1.
    PrefetchFilled { line: u64, pc_hash: u16 },
    /// First demand hit on a prefetched line. `lead_cycles` is the gap
    /// between fill and this use — the lead time the prefetch bought.
    PrefetchFirstUse { line: u64, pc_hash: u16, lead_cycles: u64 },
    /// A prefetched line was evicted without ever being demanded.
    PrefetchEvictedUnused { line: u64, pc_hash: u16 },
    /// A data-side demand miss not covered by any prefetch.
    DemandMiss { line: u64, level: ServiceLevel },
}

impl TraceKind {
    /// Stable snake_case event name used in the JSONL export.
    pub fn name(&self) -> &'static str {
        match self {
            TraceKind::BranchPredicted { .. } => "branch_predicted",
            TraceKind::BranchResolved { .. } => "branch_resolved",
            TraceKind::PrefetchIssued { .. } => "prefetch_issued",
            TraceKind::PrefetchDropped { .. } => "prefetch_dropped",
            TraceKind::PrefetchMshrMerged { .. } => "prefetch_mshr_merged",
            TraceKind::PrefetchFilled { .. } => "prefetch_filled",
            TraceKind::PrefetchFirstUse { .. } => "prefetch_first_use",
            TraceKind::PrefetchEvictedUnused { .. } => "prefetch_evicted_unused",
            TraceKind::DemandMiss { .. } => "demand_miss",
        }
    }
}

/// One cycle-stamped occurrence in a simulated core's prefetch lifecycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Core clock cycle the event occurred at.
    pub cycle: u64,
    /// Index of the core the event belongs to.
    pub core: u32,
    /// What happened.
    pub kind: TraceKind,
}

impl TraceEvent {
    /// Serialises the event as one line of JSON, matching the schema in
    /// `DESIGN.md` ("Observability"). Keys appear in a fixed order
    /// (`event`, `cycle`, `core`, then payload fields) so the output is
    /// stable across runs.
    pub fn to_json_line(&self) -> String {
        let head = format!(
            "{{\"event\":\"{}\",\"cycle\":{},\"core\":{}",
            self.kind.name(),
            self.cycle,
            self.core
        );
        let tail = match self.kind {
            TraceKind::BranchPredicted { pc, taken, confidence } => {
                format!(",\"pc\":{pc},\"taken\":{taken},\"confidence\":{confidence:.4}")
            }
            TraceKind::BranchResolved { pc, taken, mispredicted } => {
                format!(",\"pc\":{pc},\"taken\":{taken},\"mispredicted\":{mispredicted}")
            }
            TraceKind::PrefetchIssued { line, pc_hash }
            | TraceKind::PrefetchFilled { line, pc_hash }
            | TraceKind::PrefetchEvictedUnused { line, pc_hash } => {
                format!(",\"line\":{line},\"pc_hash\":{pc_hash}")
            }
            TraceKind::PrefetchDropped { line, pc_hash, reason } => {
                format!(
                    ",\"line\":{line},\"pc_hash\":{pc_hash},\"reason\":\"{}\"",
                    reason.as_str()
                )
            }
            TraceKind::PrefetchMshrMerged { line, pc_hash, remaining_cycles } => {
                format!(",\"line\":{line},\"pc_hash\":{pc_hash},\"remaining_cycles\":{remaining_cycles}")
            }
            TraceKind::PrefetchFirstUse { line, pc_hash, lead_cycles } => {
                format!(",\"line\":{line},\"pc_hash\":{pc_hash},\"lead_cycles\":{lead_cycles}")
            }
            TraceKind::DemandMiss { line, level } => {
                format!(",\"line\":{line},\"level\":\"{}\"", level.as_str())
            }
        };
        format!("{head}{tail}}}")
    }
}

/// Trace options carried by the simulator configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceConfig {
    /// Record events. Off by default; when off the simulation takes the
    /// exact same code paths as before this module existed.
    pub enabled: bool,
    /// Ring-buffer capacity in events. Older events are overwritten once
    /// the ring is full; lifecycle *counts* are unaffected by overflow.
    pub capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            capacity: 1 << 16,
        }
    }
}

impl TraceConfig {
    /// Tracing on with the default ring capacity.
    pub fn on() -> Self {
        Self {
            enabled: true,
            ..Self::default()
        }
    }
}

/// Exact per-core tallies of each lifecycle outcome, accumulated
/// independently of the event ring (so they survive ring overflow).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LifecycleCounts {
    /// Prefetches that entered the memory system.
    pub issued: u64,
    /// Candidates discarded before issue, by [`DropReason`] order:
    /// `[filter, queue_full, mshr_full, redundant]`.
    pub dropped: [u64; 4],
    /// Prefetched lines installed in the L1.
    pub filled: u64,
    /// Prefetched lines whose first demand hit arrived after the fill.
    pub first_use: u64,
    /// Demand accesses that merged with an in-flight prefetch (late
    /// prefetches).
    pub merged_late: u64,
    /// Prefetched lines evicted without a demand hit.
    pub evicted_unused: u64,
    /// Data-side demand misses not covered by any prefetch.
    pub demand_misses: u64,
    /// Sum of `lead_cycles` over all first uses (for mean lead time).
    pub lead_cycles_total: u64,
    /// Conditional branches predicted / resolved / mispredicted.
    pub branches_predicted: u64,
    pub branches_resolved: u64,
    pub mispredicts: u64,
}

impl LifecycleCounts {
    fn observe(&mut self, kind: &TraceKind) {
        match kind {
            TraceKind::BranchPredicted { .. } => self.branches_predicted += 1,
            TraceKind::BranchResolved { mispredicted, .. } => {
                self.branches_resolved += 1;
                self.mispredicts += u64::from(*mispredicted);
            }
            TraceKind::PrefetchIssued { .. } => self.issued += 1,
            TraceKind::PrefetchDropped { reason, .. } => self.dropped[*reason as usize] += 1,
            TraceKind::PrefetchMshrMerged { .. } => self.merged_late += 1,
            TraceKind::PrefetchFilled { .. } => self.filled += 1,
            TraceKind::PrefetchFirstUse { lead_cycles, .. } => {
                self.first_use += 1;
                self.lead_cycles_total += lead_cycles;
            }
            TraceKind::PrefetchEvictedUnused { .. } => self.evicted_unused += 1,
            TraceKind::DemandMiss { .. } => self.demand_misses += 1,
        }
    }

    /// Prefetches that did useful work: timely first uses plus late MSHR
    /// merges.
    pub fn useful(&self) -> u64 {
        self.first_use + self.merged_late
    }

    /// Sums two cores' tallies (for whole-CMP metrics).
    pub fn combined(&self, other: &LifecycleCounts) -> LifecycleCounts {
        let mut out = *self;
        out.issued += other.issued;
        for (d, o) in out.dropped.iter_mut().zip(other.dropped) {
            *d += o;
        }
        out.filled += other.filled;
        out.first_use += other.first_use;
        out.merged_late += other.merged_late;
        out.evicted_unused += other.evicted_unused;
        out.demand_misses += other.demand_misses;
        out.lead_cycles_total += other.lead_cycles_total;
        out.branches_predicted += other.branches_predicted;
        out.branches_resolved += other.branches_resolved;
        out.mispredicts += other.mispredicts;
        out
    }

    /// Derives the paper's Section V metrics from the tallies. See
    /// `DESIGN.md` ("Observability") for the exact definitions.
    pub fn metrics(&self) -> LifecycleMetrics {
        fn ratio(num: u64, den: u64) -> f64 {
            if den == 0 {
                0.0
            } else {
                num as f64 / den as f64
            }
        }
        let useful = self.useful();
        LifecycleMetrics {
            accuracy: ratio(useful, useful + self.evicted_unused),
            coverage: ratio(useful, useful + self.demand_misses),
            timeliness: ratio(self.first_use, useful),
            pollution: ratio(self.evicted_unused, self.filled),
            mean_lead_cycles: ratio(self.lead_cycles_total, self.first_use),
        }
    }
}

/// Per-run prefetch quality metrics derived from [`LifecycleCounts`].
///
/// All ratios are in `[0, 1]` and are `0.0` when their denominator is zero.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LifecycleMetrics {
    /// `useful / (useful + evicted_unused)` — of the prefetches whose fate
    /// is known, the fraction that were demanded.
    pub accuracy: f64,
    /// `useful / (useful + demand_misses)` — the fraction of would-be
    /// misses the prefetcher absorbed.
    pub coverage: f64,
    /// `first_use / useful` — of the useful prefetches, the fraction that
    /// arrived *before* the demand (the rest merged late in an MSHR).
    pub timeliness: f64,
    /// `evicted_unused / filled` — the fraction of installed prefetches
    /// that only displaced other data. A proxy: true pollution needs
    /// shadow tags.
    pub pollution: f64,
    /// Mean `lead_cycles` over timely first uses.
    pub mean_lead_cycles: f64,
}

/// Bounded event ring plus exact per-core lifecycle tallies.
#[derive(Debug, Clone)]
pub struct TraceSink {
    ring: VecDeque<TraceEvent>,
    capacity: usize,
    /// Events discarded from the front of the ring after it filled.
    overwritten: u64,
    per_core: Vec<LifecycleCounts>,
}

impl TraceSink {
    /// An empty sink retaining at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            ring: VecDeque::with_capacity(capacity),
            capacity,
            overwritten: 0,
            per_core: Vec::new(),
        }
    }

    /// Records one event, evicting the oldest if the ring is full.
    pub fn record(&mut self, event: TraceEvent) {
        let core = event.core as usize;
        if core >= self.per_core.len() {
            self.per_core.resize(core + 1, LifecycleCounts::default());
        }
        self.per_core[core].observe(&event.kind);
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.overwritten += 1;
        }
        self.ring.push_back(event);
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.ring.iter()
    }

    /// How many events were pushed out of the ring by overflow.
    pub fn overwritten(&self) -> u64 {
        self.overwritten
    }

    /// Total events observed (retained + overwritten).
    pub fn total_recorded(&self) -> u64 {
        self.ring.len() as u64 + self.overwritten
    }

    /// Number of cores that have recorded at least one event.
    pub fn cores(&self) -> usize {
        self.per_core.len()
    }

    /// Exact tallies for `core` (zeros if it never recorded an event).
    pub fn lifecycle(&self, core: usize) -> LifecycleCounts {
        self.per_core.get(core).copied().unwrap_or_default()
    }

    /// Tallies summed over every core.
    pub fn lifecycle_total(&self) -> LifecycleCounts {
        self.per_core
            .iter()
            .fold(LifecycleCounts::default(), |acc, c| acc.combined(c))
    }

    /// Consumes the sink into `(events, per-core tallies)`.
    pub fn into_parts(self) -> (Vec<TraceEvent>, Vec<LifecycleCounts>) {
        (self.ring.into_iter().collect(), self.per_core)
    }
}

/// A cheap, cloneable handle components use to emit events.
///
/// Clones share one [`TraceSink`]; [`Tracer::for_core`] derives a clone
/// that stamps a fixed core index so deep components (the B-Fetch engine,
/// the memory hierarchy) need not thread core ids through every call.
/// The disabled handle ([`Tracer::disabled`], also `Default`) makes every
/// `emit` a no-op branch.
///
/// Not `Send`: a simulation (and its tracer) lives on one worker thread;
/// only extracted results cross threads.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    sink: Option<Rc<RefCell<TraceSink>>>,
    core: u32,
}

impl Tracer {
    /// The no-op handle every component starts with.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// A live handle backed by a fresh sink, or the disabled handle if
    /// `cfg.enabled` is false.
    pub fn enabled(cfg: &TraceConfig) -> Self {
        if !cfg.enabled {
            return Self::disabled();
        }
        Self {
            sink: Some(Rc::new(RefCell::new(TraceSink::new(cfg.capacity)))),
            core: 0,
        }
    }

    /// A clone of this handle that stamps events with `core`.
    pub fn for_core(&self, core: u32) -> Self {
        Self {
            sink: self.sink.clone(),
            core,
        }
    }

    /// Whether emits reach a sink. Callers with expensive payloads can
    /// check this first; plain emits don't need to.
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Records `kind` at `cycle`, stamped with this handle's core.
    #[inline]
    pub fn emit(&self, cycle: u64, kind: TraceKind) {
        if let Some(sink) = &self.sink {
            sink.borrow_mut().record(TraceEvent {
                cycle,
                core: self.core,
                kind,
            });
        }
    }

    /// Records `kind` at `cycle` for an explicit `core`, for shared
    /// components (the memory system) that serve several cores through
    /// one handle.
    #[inline]
    pub fn emit_for(&self, core: u32, cycle: u64, kind: TraceKind) {
        if let Some(sink) = &self.sink {
            sink.borrow_mut().record(TraceEvent { cycle, core, kind });
        }
    }

    /// Unwraps the sink, if this handle is live and holds the last
    /// reference. Call after dropping all component clones.
    pub fn finish(self) -> Option<TraceSink> {
        let rc = self.sink?;
        match Rc::try_unwrap(rc) {
            Ok(cell) => Some(cell.into_inner()),
            Err(rc) => Some(rc.borrow().clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn issued(line: u64) -> TraceKind {
        TraceKind::PrefetchIssued { line, pc_hash: 1 }
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        t.emit(1, issued(0x40));
        assert!(t.finish().is_none());
        // enabled:false config also yields the disabled handle
        let t = Tracer::enabled(&TraceConfig::default());
        assert!(!t.is_enabled());
    }

    #[test]
    fn ring_overflow_drops_oldest_but_counts_stay_exact() {
        let mut sink = TraceSink::new(3);
        for i in 0..5u64 {
            sink.record(TraceEvent {
                cycle: i,
                core: 0,
                kind: issued(0x40 * i),
            });
        }
        assert_eq!(sink.overwritten(), 2);
        assert_eq!(sink.total_recorded(), 5);
        let cycles: Vec<u64> = sink.events().map(|e| e.cycle).collect();
        assert_eq!(cycles, [2, 3, 4]); // oldest two gone
        assert_eq!(sink.lifecycle(0).issued, 5); // exact despite overflow
    }

    #[test]
    fn per_core_tallies_are_separate_and_total_sums() {
        let cfg = TraceConfig { enabled: true, capacity: 16 };
        let t = Tracer::enabled(&cfg);
        let c0 = t.for_core(0);
        let c1 = t.for_core(1);
        c0.emit(1, issued(0x40));
        c1.emit(2, issued(0x80));
        c1.emit(3, TraceKind::PrefetchFilled { line: 0x80, pc_hash: 1 });
        drop((c0, c1));
        let sink = t.finish().unwrap();
        assert_eq!(sink.cores(), 2);
        assert_eq!(sink.lifecycle(0).issued, 1);
        assert_eq!(sink.lifecycle(1).filled, 1);
        assert_eq!(sink.lifecycle_total().issued, 2);
    }

    #[test]
    fn metrics_match_hand_computed_values() {
        // 4 issued; 3 filled; 2 first-use (leads 10 and 30), 1 merged late,
        // 1 evicted unused; 6 uncovered demand misses.
        let mut c = LifecycleCounts {
            issued: 4,
            filled: 3,
            first_use: 2,
            merged_late: 1,
            evicted_unused: 1,
            demand_misses: 6,
            lead_cycles_total: 40,
            ..LifecycleCounts::default()
        };
        assert_eq!(c.useful(), 3);
        let m = c.metrics();
        assert_eq!(m.accuracy, 3.0 / 4.0);
        assert_eq!(m.coverage, 3.0 / 9.0);
        assert_eq!(m.timeliness, 2.0 / 3.0);
        assert_eq!(m.pollution, 1.0 / 3.0);
        assert_eq!(m.mean_lead_cycles, 20.0);
        // all-zero counts give 0.0 everywhere, not NaN
        c = LifecycleCounts::default();
        let z = c.metrics();
        assert_eq!(z.accuracy, 0.0);
        assert_eq!(z.coverage, 0.0);
        assert!(z.timeliness == 0.0 && z.pollution == 0.0);
    }

    #[test]
    fn dropped_reasons_bucket_independently() {
        let mut sink = TraceSink::new(8);
        for (i, reason) in [
            DropReason::Filter,
            DropReason::Filter,
            DropReason::QueueFull,
            DropReason::Redundant,
        ]
        .into_iter()
        .enumerate()
        {
            sink.record(TraceEvent {
                cycle: i as u64,
                core: 0,
                kind: TraceKind::PrefetchDropped {
                    line: 0,
                    pc_hash: 0,
                    reason,
                },
            });
        }
        assert_eq!(sink.lifecycle(0).dropped, [2, 1, 0, 1]);
    }

    #[test]
    fn json_lines_have_stable_shape() {
        let e = TraceEvent {
            cycle: 120,
            core: 2,
            kind: TraceKind::PrefetchFirstUse {
                line: 0x1040,
                pc_hash: 513,
                lead_cycles: 18,
            },
        };
        assert_eq!(
            e.to_json_line(),
            "{\"event\":\"prefetch_first_use\",\"cycle\":120,\"core\":2,\
             \"line\":4160,\"pc_hash\":513,\"lead_cycles\":18}"
        );
        let e = TraceEvent {
            cycle: 7,
            core: 0,
            kind: TraceKind::BranchPredicted {
                pc: 64,
                taken: true,
                confidence: 0.875,
            },
        };
        assert_eq!(
            e.to_json_line(),
            "{\"event\":\"branch_predicted\",\"cycle\":7,\"core\":0,\
             \"pc\":64,\"taken\":true,\"confidence\":0.8750}"
        );
        let e = TraceEvent {
            cycle: 9,
            core: 1,
            kind: TraceKind::DemandMiss {
                line: 128,
                level: ServiceLevel::Dram,
            },
        };
        assert_eq!(
            e.to_json_line(),
            "{\"event\":\"demand_miss\",\"cycle\":9,\"core\":1,\"line\":128,\"level\":\"dram\"}"
        );
    }

    #[test]
    fn tracer_handles_share_one_ring_across_wraparound() {
        // two per-core handles feed one 4-entry ring past capacity: the
        // ring keeps only the newest four events, but both cores' lifecycle
        // tallies (which accumulate outside the ring) stay exact
        let cfg = TraceConfig { enabled: true, capacity: 4 };
        let t = Tracer::enabled(&cfg);
        let c0 = t.for_core(0);
        let c1 = t.for_core(1);
        for i in 0..5u64 {
            c0.emit(2 * i, issued(0x40 * i));
            c1.emit(2 * i + 1, issued(0x40 * i));
        }
        drop((c0, c1));
        let sink = t.finish().unwrap();
        assert_eq!(sink.total_recorded(), 10);
        assert_eq!(sink.overwritten(), 6);
        let cycles: Vec<u64> = sink.events().map(|e| e.cycle).collect();
        assert_eq!(cycles, [6, 7, 8, 9], "ring keeps the newest events in order");
        assert_eq!(sink.lifecycle(0).issued, 5, "tallies survive wraparound");
        assert_eq!(sink.lifecycle(1).issued, 5);
        assert_eq!(sink.lifecycle_total().issued, 10);
    }

    #[test]
    fn zero_capacity_ring_clamps_to_one() {
        let mut sink = TraceSink::new(0);
        sink.record(TraceEvent { cycle: 1, core: 0, kind: issued(0x40) });
        sink.record(TraceEvent { cycle: 2, core: 0, kind: issued(0x80) });
        assert_eq!(sink.events().count(), 1);
        assert_eq!(sink.total_recorded(), 2);
        assert_eq!(sink.overwritten(), 1);
    }

    #[test]
    fn finish_clones_when_other_handles_remain() {
        let t = Tracer::enabled(&TraceConfig::on());
        let other = t.for_core(3);
        t.emit(1, issued(0x40));
        // `other` still alive: finish falls back to cloning the sink
        let sink = t.clone().finish().unwrap();
        assert_eq!(sink.total_recorded(), 1);
        drop((t, other));
    }
}
