; blur — 3x3 box-blur stencil over a W x H row-major grid, SRC -> DST.
;
; Real-program analog of the `leslie3d` synthetic kernel: a strided
; stencil with three concurrently-live input rows (offsets -W, 0, +W
; words), the access class where run-ahead prefetchers shine.
;
; SRC is seeded one word per 64-byte line from a fixed-seed LCG each
; pass (untouched words read as zero from the sparse memory — the blur
; only needs deterministic values, not dense ones), and DST is plainly
; overwritten, so restarts repeat an identical stream. Interior pixels
; only; the border stays whatever the init wrote.

.name blur
.default W 64              ; grid width in words (overridden per Scale)
.default H 32              ; grid height
.equ SRC  0x1000000
.equ DST  0x3000000
.equ MULT 0x5851F42D4C957F2D
.equ INC  0x14057B7EF767814F

; ---- init: one LCG word per cache line of SRC ----------------------------
        li   r1, SRC
        li   r2, SRC + W*H*8
        li   r3, 424242         ; seed
        li   r4, MULT
        li   r5, INC
init:   mul  r3, r3, r4
        add  r3, r3, r5
        store r3, 0(r1)
        addi r1, r1, 64
        blt  r1, r2, init

; ---- DST[y][x] = (sum of 3x3 SRC neighborhood) >> 3 ----------------------
; the scan keeps running src/dst pointers (addi bumps, as compiled code
; would) instead of re-deriving addresses from (y, x) every pixel
        li   r14, W
        li   r10, 1             ; y in 1..H-1
yloop:  mul  r15, r10, r14      ; row base index, computed once per row
        slli r15, r15, 3
        addi r16, r15, SRC+8    ; src center pointer, starting at x=1
        addi r17, r15, DST+8    ; dst pointer
        li   r11, 1             ; x in 1..W-1
xloop:  load r20, -(W+1)*8(r16) ; row above
        load r21, -(W)*8(r16)
        load r22, -(W-1)*8(r16)
        add  r20, r20, r21
        add  r20, r20, r22
        load r21, -8(r16)       ; this row
        load r22, 0(r16)
        load r23, 8(r16)
        add  r20, r20, r21
        add  r20, r20, r22
        add  r20, r20, r23
        load r21, (W-1)*8(r16)  ; row below
        load r22, (W)*8(r16)
        load r23, (W+1)*8(r16)
        add  r20, r20, r21
        add  r20, r20, r22
        add  r20, r20, r23
        srli r20, r20, 3        ; approximate mean (divide by 8)
        store r20, 0(r17)
        addi r16, r16, 8
        addi r17, r17, 8
        addi r11, r11, 1
        li   r18, W-1
        blt  r11, r18, xloop
        addi r10, r10, 1
        li   r19, H-1
        blt  r10, r19, yloop
        halt
