; bsearch — Q binary searches with LCG-drawn keys over a sorted table.
;
; Real-program analog of the `astar` synthetic kernel: each probe is a
; short chain of data-dependent loads and hard-to-predict compare
; branches hopping across the table — the low-MLP, branchy class where
; branch-directed lookahead has to earn its keep.
;
; The table holds A[i] = i * STEP (idempotent stores), and the query
; stream restarts from a fixed seed, so restarts repeat an identical
; stream. Keys are drawn modulo the key range via a shift, and hits are
; counted so the search result feeds control flow.

.name bsearch
.default N 4096            ; table elements, must be a power of two
.default NBITS 12          ; log2(N)
.equ TAB  0x1000000
.equ STEP 7                ; table values: 0, 7, 14, ...
.equ Q    N>>2             ; queries per pass
.equ MULT 0x5851F42D4C957F2D
.equ INC  0x14057B7EF767814F

; ---- init: A[i] = i * STEP ----------------------------------------------
        li   r1, TAB
        li   r2, TAB + N*8
        li   r3, 0              ; running value
init:   store r3, 0(r1)
        addi r3, r3, STEP
        addi r1, r1, 8
        blt  r1, r2, init

; ---- query loop ----------------------------------------------------------
        li   r10, 98765         ; LCG state
        li   r11, MULT
        li   r12, INC
        li   r13, Q             ; queries remaining
        li   r14, 0             ; hit counter
query:  mul  r10, r10, r11
        add  r10, r10, r12
        srli r15, r10, 64-NBITS ; index in 0..N
        li   r16, STEP
        mul  r15, r15, r16      ; key = in-range multiple of STEP
        li   r16, 1
        and  r16, r10, r16      ; low draw bit decides hit/miss:
        add  r15, r15, r16      ; odd keys are never multiples of STEP
        ; binary search for key over [lo, hi)
        li   r17, 0             ; lo
        li   r18, N             ; hi
bs:     bge  r17, r18, miss     ; empty range: not found
        add  r19, r17, r18
        srli r19, r19, 1        ; mid
        slli r20, r19, 3
        addi r20, r20, TAB
        load r21, 0(r20)        ; A[mid]
        beq  r21, r15, hit
        bge  r21, r15, goleft
        addi r17, r19, 1        ; key > A[mid]: lo = mid+1
        jmp  bs
goleft: add  r18, r19, r0       ; hi = mid
        jmp  bs
hit:    addi r14, r14, 1
miss:   addi r13, r13, -1
        bne  r13, r0, query
        halt
