; hashjoin — build + probe of a direct-mapped hash table (2^B buckets of
; key,payload word pairs), the core loop of a database hash join.
;
; Real-program analog of the `soplex` synthetic kernel: the build phase
; scatters stores across the table by multiplicative hash, the probe
; phase gathers from the same pseudo-random buckets — indexed sparse
; traffic a stride prefetcher cannot follow.
;
; Build inserts NK keys by overwrite (last writer wins), and both phases
; draw from fixed-seed LCGs, so restarts repeat an identical stream. The
; probe stream replays the build keys (guaranteed bucket hits, then a
; key compare decides the match) interleaved with a second, disjoint
; stream of mostly-missing keys.

.name hashjoin
.default B  12             ; log2(bucket count) (overridden per Scale)
.default NK 1024           ; keys inserted per pass
.equ TAB  0x1000000        ; bucket i at TAB + i*16: [key, payload]
.equ PHI  0x9E3779B97F4A7C15   ; multiplicative-hash constant
.equ MULT 0x5851F42D4C957F2D
.equ INC  0x14057B7EF767814F
.equ SEED 31415

; ---- build: insert NK LCG keys ------------------------------------------
        li   r1, SEED           ; LCG state
        li   r2, MULT
        li   r3, INC
        li   r4, PHI
        li   r5, NK
build:  mul  r1, r1, r2
        add  r1, r1, r3
        mul  r6, r1, r4         ; hash
        srli r6, r6, 64-B       ; bucket index
        slli r6, r6, 4          ; *16 bytes
        addi r6, r6, TAB
        store r1, 0(r6)         ; key
        store r5, 8(r6)         ; payload (loop counter: deterministic)
        addi r5, r5, -1
        bne  r5, r0, build

; ---- probe: replay build keys, interleave a missing-key stream -----------
        li   r1, SEED           ; replayed build stream
        li   r10, 271828        ; disjoint probe stream (mostly misses)
        li   r5, NK
        li   r14, 0             ; matched-payload accumulator
probe:  mul  r1, r1, r2
        add  r1, r1, r3
        mul  r6, r1, r4
        srli r6, r6, 64-B
        slli r6, r6, 4
        addi r6, r6, TAB
        load r7, 0(r6)          ; bucket key
        bne  r7, r1, pmiss      ; overwritten by a later build insert?
        load r8, 8(r6)
        add  r14, r14, r8
pmiss:  mul  r10, r10, r2       ; second stream
        add  r10, r10, r3
        mul  r6, r10, r4
        srli r6, r6, 64-B
        slli r6, r6, 4
        addi r6, r6, TAB
        load r7, 0(r6)
        bne  r7, r10, qmiss
        load r8, 8(r6)
        add  r14, r14, r8
qmiss:  addi r5, r5, -1
        bne  r5, r0, probe
        halt
