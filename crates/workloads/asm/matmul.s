; matmul — naive i-j-k dense N x N matrix multiply, C = A * B.
;
; Real-program analog of the `calculix` synthetic kernel: compute-bound
; linear algebra whose working set is cache-resident, so no prefetcher
; moves it much. The inner product walks A's row unit-stride and B's
; column at an N*8-byte stride.
;
; A and B are re-filled from a fixed-seed LCG at the start of every pass
; and C is plainly overwritten, so restarts repeat an identical stream.

.name matmul
.default N 16              ; matrix dimension (overridden per Scale)
.equ MA   0x1000000        ; A base (row-major)
.equ MB   0x1800000        ; B base
.equ MC   0x2000000        ; C base
.equ MULT 0x5851F42D4C957F2D
.equ INC  0x14057B7EF767814F

; ---- init: A then B from one LCG stream ----------------------------------
        li   r1, MA
        li   r2, MA + N*N*8
        li   r3, 777            ; seed
        li   r4, MULT
        li   r5, INC
inita:  mul  r3, r3, r4
        add  r3, r3, r5
        store r3, 0(r1)
        addi r1, r1, 8
        blt  r1, r2, inita
        li   r1, MB
        li   r2, MB + N*N*8
initb:  mul  r3, r3, r4
        add  r3, r3, r5
        store r3, 0(r1)
        addi r1, r1, 8
        blt  r1, r2, initb

; ---- C[i][j] = sum_k A[i][k] * B[k][j] -----------------------------------
        li   r14, N
        li   r10, 0             ; i
iloop:  li   r11, 0             ; j
jloop:  li   r12, 0             ; k
        li   r13, 0             ; acc
        mul  r15, r10, r14      ; &A[i][0]
        slli r15, r15, 3
        addi r15, r15, MA
        slli r16, r11, 3        ; &B[0][j]
        addi r16, r16, MB
kloop:  load r17, 0(r15)
        load r18, 0(r16)
        mul  r17, r17, r18
        add  r13, r13, r17
        addi r15, r15, 8        ; A row: unit stride
        addi r16, r16, N*8      ; B column: row stride
        addi r12, r12, 1
        blt  r12, r14, kloop
        mul  r15, r10, r14      ; &C[i][j]
        add  r15, r15, r11
        slli r15, r15, 3
        addi r15, r15, MC
        store r13, 0(r15)
        addi r11, r11, 1
        blt  r11, r14, jloop
        addi r10, r10, 1
        blt  r10, r14, iloop
        halt
