; quicksort — iterative in-place quicksort over N 64-bit words.
;
; Real-program analog of the `bzip2` synthetic kernel: cache-resident
; sort/compare code dominated by data-dependent branches, little help
; from any prefetcher.
;
; Every pass re-fills the array from a fixed-seed LCG before sorting, so
; a restarted program (the timing harness loops halted cores) repeats an
; identical instruction stream. The ISA has no indirect jumps, so
; recursion is replaced by an explicit (lo, hi) range stack; ranges hold
; element *addresses*, inclusive. Comparisons are signed (blt/bge), which
; is a consistent total order over the LCG's u64 patterns.

.name quicksort
.default N 1024            ; element count (overridden per Scale)
.equ ARR  0x1000000        ; array base
.equ STK  0x2000000        ; range-stack base (grows up, pairs of words)
.equ MULT 0x5851F42D4C957F2D   ; Knuth MMIX LCG multiplier
.equ INC  0x14057B7EF767814F   ; ... and increment

; ---- init: A[i] = lcg(i) -------------------------------------------------
        li   r1, ARR
        li   r2, ARR + N*8
        li   r3, 12345          ; seed
        li   r4, MULT
        li   r5, INC
init:   mul  r3, r3, r4
        add  r3, r3, r5
        store r3, 0(r1)
        addi r1, r1, 8
        blt  r1, r2, init

; ---- sort: explicit-stack quicksort, Lomuto partition --------------------
        li   r10, STK           ; sp
        li   r11, ARR           ; lo
        li   r12, ARR + (N-1)*8 ; hi
        store r11, 0(r10)
        store r12, 8(r10)
        addi r10, r10, 16
pop:    li   r20, STK
        beq  r10, r20, done     ; stack empty
        addi r10, r10, -16
        load r11, 0(r10)        ; lo
        load r12, 8(r10)        ; hi
        bge  r11, r12, pop      ; 0- or 1-element range
        load r13, 0(r12)        ; pivot = A[hi]
        addi r14, r11, -8       ; i = lo - 1
        add  r15, r11, r0       ; j = lo
part:   bge  r15, r12, partend  ; j reached hi
        load r16, 0(r15)
        bge  r16, r13, noswap   ; A[j] >= pivot
        addi r14, r14, 8
        load r17, 0(r14)
        store r16, 0(r14)       ; swap A[i] <-> A[j]
        store r17, 0(r15)
noswap: addi r15, r15, 8
        jmp  part
partend: addi r14, r14, 8       ; pivot's final slot
        load r17, 0(r14)
        store r13, 0(r14)
        store r17, 0(r12)
        addi r16, r14, -8       ; push (lo, i-1)
        store r11, 0(r10)
        store r16, 8(r10)
        addi r10, r10, 16
        addi r16, r14, 8        ; push (i+1, hi)
        store r16, 0(r10)
        store r12, 8(r10)
        addi r10, r10, 16
        jmp  pop

; ---- checksum the (now sorted) array ------------------------------------
done:   li   r1, ARR
        li   r2, ARR + N*8
        li   r3, 0
sum:    load r4, 0(r1)
        add  r3, r3, r4
        addi r1, r1, 8
        blt  r1, r2, sum
        halt
