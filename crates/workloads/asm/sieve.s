; sieve — Sieve of Eratosthenes over N candidates, one word per number,
; followed by a streaming prime-count pass.
;
; Real-program analog of the `libquantum` synthetic kernel: long
; streaming sweeps (the composite-marking inner loops stride i*8 bytes,
; the counting pass strides 8 bytes) over a table that exceeds the LLC
; at full scale.
;
; No init pass is needed: unwritten words read as zero ("prime"), and
; marking is monotone — a prime index is never stored to, so every pass
; takes exactly the same branches whether the table is fresh or already
; marked. Restarts therefore repeat an identical stream.

.name sieve
.default N 8192            ; candidate count (overridden per Scale)
.equ TAB  0x1000000        ; one word per candidate; 0 = prime

        li   r1, 2              ; i
        li   r2, N
outer:  slli r3, r1, 3
        addi r3, r3, TAB
        load r4, 0(r3)
        bne  r4, r0, next       ; composite: skip marking
        mul  r5, r1, r1         ; j = i*i
        bge  r5, r2, next       ; i*i >= N: nothing to mark
        slli r6, r5, 3
        addi r6, r6, TAB        ; &TAB[j]
        slli r7, r1, 3          ; step = i words
        li   r8, TAB + N*8
        li   r9, 1
inner:  load r11, 0(r6)         ; test-before-store keeps marking
        bne  r11, r0, skip      ; load-driven (stores retire without
        store r9, 0(r6)         ; stalling, loads expose the misses)
skip:   add  r6, r6, r7
        blt  r6, r8, inner
next:   addi r1, r1, 1
        blt  r1, r2, outer

; ---- count primes (streaming read of the whole table) --------------------
        li   r1, TAB + 2*8
        li   r8, TAB + N*8
        li   r10, 0             ; prime count
count:  load r4, 0(r1)
        bne  r4, r0, notp
        addi r10, r10, 1
notp:   addi r1, r1, 8
        blt  r1, r8, count
        halt
