//! The fault-injection workload used by the robustness test suite.
//!
//! [`FAULT_KERNEL`] is a deliberately boring program — a tiny
//! cache-resident counted loop with a perfectly predictable branch — so a
//! fault-injection run spends no time on memory behaviour and the failure
//! fires at a deterministic cycle. The *fault itself* is not encoded in
//! the program (a functional workload cannot livelock the timing model):
//! it is armed through `SimConfig::fault` / watchdog / cycle-budget
//! settings, which [`FaultMode`]'s documentation maps out.
//! [`FAULT_KERNEL`] is intentionally **not** part of [`mod@crate::kernels`]'
//! registry — sweeps over "all kernels" must never pick it up.

use crate::kernels::{Kernel, Scale};
use bfetch_isa::{Program, ProgramBuilder, Reg};

/// How an injected fault should manifest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Panic inside the simulator once the trigger count commits
    /// (exercises `catch_unwind` isolation in the harness executor).
    Panic,
    /// Stop committing once the trigger count commits (exercises the
    /// forward-progress watchdog, `SimError::Watchdog`).
    Livelock,
    /// Stop committing with the watchdog disabled, so the hard cycle
    /// budget is the backstop (`SimError::CycleBudget`).
    Runaway,
}

/// A fault-injection plan: the mode plus the committed-instruction count
/// it triggers at. Pair with [`FAULT_KERNEL`]; the harness's
/// `GridPoint::faulty` translates the plan into `SimConfig` settings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultKernel {
    /// How the fault manifests.
    pub mode: FaultMode,
    /// Total committed instructions (warmup included) at which it fires.
    pub at_insts: u64,
}

impl FaultKernel {
    /// The workload to run the fault under.
    pub fn kernel(&self) -> &'static Kernel {
        &FAULT_KERNEL
    }

    /// Builds the (scale-independent) fault-loop program.
    pub fn program(&self) -> Program {
        faultloop(Scale::Small)
    }
}

/// The fault-loop workload: a predictable counted loop over a handful of
/// cache-resident lines. Not registered in [`crate::kernels::kernels`].
pub static FAULT_KERNEL: Kernel = Kernel {
    name: "faultloop",
    prefetch_sensitive: false,
    foa: 0.0,
    build: faultloop,
};

fn faultloop(_scale: Scale) -> Program {
    let mut b = ProgramBuilder::new("faultloop");
    let base = 0x10_0000u64;
    b.li(Reg::R1, base as i64);
    b.li(Reg::R2, 0);
    b.li(Reg::R3, 1_000_000_000); // far beyond any test's quota
    let top = b.label();
    b.bind(top);
    b.load(Reg::R4, Reg::R1, 0);
    b.add(Reg::R5, Reg::R5, Reg::R4);
    b.xor(Reg::R6, Reg::R6, Reg::R5);
    b.addi(Reg::R2, Reg::R2, 1);
    b.blt(Reg::R2, Reg::R3, top);
    b.halt();
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfetch_isa::ArchState;

    #[test]
    fn fault_kernel_is_not_in_the_registry() {
        assert!(crate::kernels()
            .iter()
            .all(|k| k.name != FAULT_KERNEL.name));
    }

    #[test]
    fn fault_loop_runs_functionally() {
        let p = FaultKernel {
            mode: FaultMode::Panic,
            at_insts: 1,
        }
        .program();
        let mut s = ArchState::new(&p);
        let n = s.run(&p, 50_000);
        assert!(n >= 50_000, "fault loop stopped after {n} instructions");
    }

    #[test]
    fn kernel_builder_matches_program() {
        let fk = FaultKernel {
            mode: FaultMode::Livelock,
            at_insts: 5_000,
        };
        assert_eq!(fk.kernel().name, "faultloop");
        assert_eq!(fk.kernel().build_small().len(), fk.program().len());
    }
}
