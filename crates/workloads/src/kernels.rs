//! The 18 SPEC-CPU2006-inspired synthetic kernels.
//!
//! Each builder produces a [`Program`] whose *access-pattern class*,
//! *footprint* and *branch behaviour* match what the characterization
//! literature reports for its SPEC namesake. Footprints are scaled so the
//! memory-bound kernels exceed the 2 MB/core shared L3 at full scale while
//! the compute kernels stay cache-resident.

use bfetch_isa::{Program, ProgramBuilder, Reg};
use bfetch_prng::Pcg32;

/// Workload footprint scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced footprints for unit/integration tests (fast).
    Small,
    /// Evaluation footprints (memory-bound kernels exceed the LLC).
    Full,
}

/// A synthetic benchmark kernel.
#[derive(Debug, Clone, Copy)]
pub struct Kernel {
    /// SPEC-style name.
    pub name: &'static str,
    /// Whether the kernel benefits from a perfect prefetcher (Figure 1's
    /// "prefetch sensitive" class).
    pub prefetch_sensitive: bool,
    /// Frequency-of-access score used by the FOA mix selection (higher =
    /// more off-core memory traffic; calibrated from solo profiling runs).
    pub foa: f64,
    pub(crate) build: fn(Scale) -> Program,
}

impl Kernel {
    /// Builds the kernel at the given scale.
    pub fn build(&self, scale: Scale) -> Program {
        (self.build)(scale)
    }

    /// Test-scale build.
    pub fn build_small(&self) -> Program {
        self.build(Scale::Small)
    }

    /// Evaluation-scale build.
    pub fn build_full(&self) -> Program {
        self.build(Scale::Full)
    }
}

#[inline]
fn sz(scale: Scale, full_bytes: u64) -> u64 {
    match scale {
        Scale::Full => full_bytes,
        Scale::Small => (full_bytes / 16).max(64 * 1024),
    }
}

fn rng(seed: u64) -> Pcg32 {
    Pcg32::new(seed)
}

/// Emits a dependent ALU chain of `n` operations on (r28, r29) seeded from
/// `src` — per-iteration compute that bounds MLP the way real kernel bodies
/// do.
fn compute_chain(b: &mut ProgramBuilder, src: Reg, n: usize) {
    b.add(Reg::R28, Reg::R28, src);
    for i in 0..n {
        if i % 2 == 0 {
            b.xor(Reg::R29, Reg::R29, Reg::R28);
        } else {
            b.add(Reg::R28, Reg::R28, Reg::R29);
        }
    }
}

// ---------------------------------------------------------------------------
// streaming / stencil kernels
// ---------------------------------------------------------------------------

/// libquantum: one huge array of 8-byte quantum-register cells swept
/// element by element with a dependent update per cell — the most
/// prefetch-sensitive pattern in the suite. The tiny 8 B per-PC stride
/// gives a classic stride prefetcher almost no reach (8 × 8 B = one line),
/// while region- and loop-based prefetchers run far ahead.
fn libquantum(scale: Scale) -> Program {
    let bytes = sz(scale, 32 * 1024 * 1024);
    let mut b = ProgramBuilder::new("libquantum");
    let base = 0x100_0000u64;
    b.li(Reg::R1, base as i64);
    b.li(Reg::R2, (base + bytes) as i64);
    let top = b.label();
    b.bind(top);
    b.load(Reg::R4, Reg::R1, 0);
    compute_chain(&mut b, Reg::R4, 8);
    b.store(Reg::R28, Reg::R1, 0);
    b.addi(Reg::R1, Reg::R1, 8);
    b.blt(Reg::R1, Reg::R2, top);
    b.halt();
    b.finish()
}

/// lbm: lattice-Boltzmann style — three source streams and one destination
/// stream advance together, heavy per-site compute.
fn lbm(scale: Scale) -> Program {
    let bytes = sz(scale, 12 * 1024 * 1024);
    let mut b = ProgramBuilder::new("lbm");
    let a0 = 0x100_0000u64;
    let a1 = a0 + bytes;
    let a2 = a1 + bytes;
    let dst = a2 + bytes;
    b.li(Reg::R1, a0 as i64);
    b.li(Reg::R2, a1 as i64);
    b.li(Reg::R3, a2 as i64);
    b.li(Reg::R4, dst as i64);
    b.li(Reg::R5, (a0 + bytes) as i64);
    let top = b.label();
    b.bind(top);
    b.load(Reg::R10, Reg::R1, 0);
    b.load(Reg::R11, Reg::R2, 0);
    b.load(Reg::R12, Reg::R3, 0);
    b.add(Reg::R13, Reg::R10, Reg::R11);
    b.xor(Reg::R13, Reg::R13, Reg::R12);
    compute_chain(&mut b, Reg::R13, 16);
    b.store(Reg::R28, Reg::R4, 0);
    b.addi(Reg::R1, Reg::R1, 64);
    b.addi(Reg::R2, Reg::R2, 64);
    b.addi(Reg::R3, Reg::R3, 64);
    b.addi(Reg::R4, Reg::R4, 64);
    b.blt(Reg::R1, Reg::R5, top);
    b.halt();
    b.finish()
}

/// bwaves: five coupled streams at two strides, long dependent compute —
/// blocked-solver traffic.
fn bwaves(scale: Scale) -> Program {
    let bytes = sz(scale, 10 * 1024 * 1024);
    let mut b = ProgramBuilder::new("bwaves");
    let a0 = 0x100_0000u64;
    b.li(Reg::R1, a0 as i64);
    b.li(Reg::R2, (a0 + bytes) as i64);
    let top = b.label();
    b.bind(top);
    b.load(Reg::R10, Reg::R1, 0);
    b.load(Reg::R11, Reg::R1, 64);
    b.load(Reg::R12, Reg::R1, 128);
    compute_chain(&mut b, Reg::R10, 20);
    b.add(Reg::R28, Reg::R28, Reg::R11);
    b.xor(Reg::R28, Reg::R28, Reg::R12);
    b.addi(Reg::R1, Reg::R1, 192);
    b.blt(Reg::R1, Reg::R2, top);
    b.halt();
    b.finish()
}

/// leslie3d: 3-D stencil — neighbour loads at row and plane strides around
/// a sequentially advancing centre.
fn leslie3d(scale: Scale) -> Program {
    let bytes = sz(scale, 16 * 1024 * 1024);
    let plane = 128 * 1024u64;
    let row = 1024u64;
    let mut b = ProgramBuilder::new("leslie3d");
    let a0 = 0x100_0000u64 + plane; // keep neighbours in range
    b.li(Reg::R1, a0 as i64);
    b.li(Reg::R2, (a0 + bytes - plane) as i64);
    let top = b.label();
    b.bind(top);
    b.load(Reg::R10, Reg::R1, 0);
    b.load(Reg::R11, Reg::R1, row as i64);
    b.load(Reg::R13, Reg::R1, plane as i64);
    b.add(Reg::R15, Reg::R10, Reg::R11);
    b.add(Reg::R15, Reg::R15, Reg::R13);
    compute_chain(&mut b, Reg::R15, 14);
    b.store(Reg::R28, Reg::R1, 0);
    b.addi(Reg::R1, Reg::R1, 64);
    b.blt(Reg::R1, Reg::R2, top);
    b.halt();
    b.finish()
}

/// zeusmp: magnetohydrodynamics stencil — two arrays, 128 B stride, heavy
/// compute per site.
fn zeusmp(scale: Scale) -> Program {
    let bytes = sz(scale, 12 * 1024 * 1024);
    let mut b = ProgramBuilder::new("zeusmp");
    let a0 = 0x100_0000u64;
    let a1 = a0 + bytes;
    b.li(Reg::R1, a0 as i64);
    b.li(Reg::R2, a1 as i64);
    b.li(Reg::R3, (a0 + bytes) as i64);
    let top = b.label();
    b.bind(top);
    b.load(Reg::R10, Reg::R1, 0);
    b.load(Reg::R11, Reg::R2, 0);
    b.load(Reg::R12, Reg::R1, 64);
    compute_chain(&mut b, Reg::R10, 18);
    b.add(Reg::R28, Reg::R28, Reg::R11);
    b.add(Reg::R28, Reg::R28, Reg::R12);
    b.store(Reg::R28, Reg::R2, 0);
    b.addi(Reg::R1, Reg::R1, 128);
    b.addi(Reg::R2, Reg::R2, 128);
    b.blt(Reg::R1, Reg::R3, top);
    b.halt();
    b.finish()
}

/// cactusADM: Einstein-equation stencil — very large plane strides make
/// three widely separated concurrent streams.
fn cactus_adm(scale: Scale) -> Program {
    let bytes = sz(scale, 16 * 1024 * 1024);
    let plane = 256 * 1024u64;
    let row = 4 * 1024u64;
    let mut b = ProgramBuilder::new("cactusADM");
    let a0 = 0x100_0000u64 + plane;
    b.li(Reg::R1, a0 as i64);
    b.li(Reg::R2, (a0 + bytes - plane) as i64);
    let top = b.label();
    b.bind(top);
    b.load(Reg::R10, Reg::R1, 0);
    b.load(Reg::R11, Reg::R1, row as i64);
    b.load(Reg::R12, Reg::R1, plane as i64);
    compute_chain(&mut b, Reg::R10, 22);
    b.add(Reg::R28, Reg::R28, Reg::R11);
    b.xor(Reg::R28, Reg::R28, Reg::R12);
    b.store(Reg::R28, Reg::R1, 0);
    b.addi(Reg::R1, Reg::R1, 64);
    b.blt(Reg::R1, Reg::R2, top);
    b.halt();
    b.finish()
}

/// milc: lattice QCD — the paper's SMS-favourable corner case
/// (Section V-B1). Lattice sites (2 KB regions) are visited in a
/// *scattered* order — per-PC strides are useless and B-Fetch's learned
/// register offsets keep changing — but every visited site is touched at
/// eight fixed offsets spanning the whole region, far wider than B-Fetch's
/// ±5-block pos/negPatt reach. SMS's trigger-replayed spatial patterns are
/// the only mechanism that covers it.
fn milc(scale: Scale) -> Program {
    let bytes = sz(scale, 16 * 1024 * 1024);
    let regions = bytes / 2048; // power of two
    let mut b = ProgramBuilder::new("milc");
    let a0 = 0x100_0000u64;
    b.li(Reg::R1, 0); // site counter
    b.li(Reg::R2, regions as i64);
    b.li(Reg::R3, (regions - 1) as i64); // region mask
    b.li(Reg::R4, a0 as i64);
    b.li(Reg::R5, 0x9E37_79B9); // scatter multiplier
    b.li(Reg::R6, 3); // run mask: 4 consecutive sites per sweep run
    let top = b.label();
    b.bind(top);
    // piecewise-sequential site order: runs of 4 consecutive lattice
    // sites, with the runs themselves scattered — the per-run regularity
    // gives stride and loop-based prefetchers partial traction while the
    // run boundaries break them; SMS replays regardless.
    b.and(Reg::R7, Reg::R1, Reg::R6); // position within the run
    b.srli(Reg::R8, Reg::R1, 2);
    b.mul(Reg::R8, Reg::R8, Reg::R5); // scatter the run index
    b.and(Reg::R8, Reg::R8, Reg::R3);
    b.slli(Reg::R8, Reg::R8, 2);
    b.and(Reg::R8, Reg::R8, Reg::R3);
    b.add(Reg::R9, Reg::R8, Reg::R7);
    b.slli(Reg::R9, Reg::R9, 11);
    b.add(Reg::R9, Reg::R9, Reg::R4);
    // The eight su3-matrix loads of a site are serialized (each address
    // computation consumes the previous value, as real site processing
    // does), so covering the region *ahead of time* — SMS's specialty — is
    // the only way to hide their latency.
    b.load(Reg::R10, Reg::R9, 0);
    let mut prev = Reg::R10;
    for (i, off) in [64i64, 512, 576, 1024, 1088, 1536, 1600].iter().enumerate() {
        let dst = Reg::from_index(11 + i).expect("valid reg");
        b.and(Reg::R19, prev, Reg::R0); // always 0, but depends on prev load
        b.add(Reg::R20, Reg::R9, Reg::R19);
        b.load(dst, Reg::R20, *off);
        prev = dst;
    }
    b.add(Reg::R18, Reg::R10, Reg::R11);
    b.add(Reg::R18, Reg::R18, Reg::R12);
    b.add(Reg::R18, Reg::R18, Reg::R13);
    b.add(Reg::R18, Reg::R18, Reg::R14);
    b.add(Reg::R18, Reg::R18, Reg::R15);
    b.add(Reg::R18, Reg::R18, Reg::R16);
    b.add(Reg::R18, Reg::R18, Reg::R17);
    compute_chain(&mut b, Reg::R18, 12);
    b.addi(Reg::R1, Reg::R1, 1);
    b.blt(Reg::R1, Reg::R2, top);
    b.halt();
    b.finish()
}

/// hmmer: profile-HMM dynamic programming — three parallel table streams
/// at word granularity, row after row.
fn hmmer(scale: Scale) -> Program {
    let bytes = sz(scale, 8 * 1024 * 1024);
    let mut b = ProgramBuilder::new("hmmer");
    let m = 0x100_0000u64;
    let i = m + bytes;
    let d = i + bytes;
    b.li(Reg::R1, m as i64);
    b.li(Reg::R2, i as i64);
    b.li(Reg::R3, d as i64);
    b.li(Reg::R4, (m + bytes) as i64);
    let top = b.label();
    b.bind(top);
    b.load(Reg::R10, Reg::R1, 0);
    b.load(Reg::R11, Reg::R2, 0);
    b.load(Reg::R12, Reg::R3, 0);
    b.add(Reg::R13, Reg::R10, Reg::R11);
    compute_chain(&mut b, Reg::R13, 8);
    b.add(Reg::R28, Reg::R28, Reg::R12);
    b.store(Reg::R28, Reg::R1, 0);
    b.addi(Reg::R1, Reg::R1, 32);
    b.addi(Reg::R2, Reg::R2, 32);
    b.addi(Reg::R3, Reg::R3, 32);
    b.blt(Reg::R1, Reg::R4, top);
    b.halt();
    b.finish()
}

// ---------------------------------------------------------------------------
// irregular kernels
// ---------------------------------------------------------------------------

/// mcf: network-simplex — a sequential arc scan (three lines per arc) whose
/// records point into a node pool that is dereferenced per arc, plus a
/// data-dependent branch. The scan prefetches; the pointer chase resists.
fn mcf(scale: Scale) -> Program {
    let arcs_bytes = sz(scale, 12 * 1024 * 1024);
    let nodes_bytes = sz(scale, 16 * 1024 * 1024);
    let arc_stride = 192u64;
    let arcs = 0x100_0000u64;
    let nodes = arcs + arcs_bytes;
    let n_arcs = arcs_bytes / arc_stride;

    // arc records: word 0 = node offset (random), word 1 = weight
    let mut r = rng(0x6d6366);
    let mut words = vec![0u64; (arcs_bytes / 8) as usize];
    for a in 0..n_arcs {
        let w = (a * arc_stride / 8) as usize;
        let node = nodes + (r.next_u64() % (nodes_bytes / 64)) * 64;
        words[w] = node;
        words[w + 1] = r.next_u64();
    }

    let mut b = ProgramBuilder::new("mcf");
    b.init_words(arcs, &words);
    b.li(Reg::R1, arcs as i64);
    b.li(Reg::R2, (arcs + arcs_bytes) as i64);
    let top = b.label();
    let skip = b.label();
    b.bind(top);
    b.load(Reg::R10, Reg::R1, 0); // node pointer
    b.load(Reg::R11, Reg::R1, 8); // weight
    b.load(Reg::R12, Reg::R10, 0); // chase into the node pool
    b.li(Reg::R14, 31);
    b.and(Reg::R13, Reg::R11, Reg::R14);
    b.beq(Reg::R13, Reg::R14, skip); // ~3% taken, data-dependent
    compute_chain(&mut b, Reg::R12, 6);
    b.bind(skip);
    b.add(Reg::R28, Reg::R28, Reg::R12);
    b.addi(Reg::R1, Reg::R1, arc_stride as i64);
    b.blt(Reg::R1, Reg::R2, top);
    b.halt();
    b.finish()
}

/// astar: grid pathfinding — 64 B cell records scanned with data-dependent
/// skips and a moderately biased branch per cell.
fn astar(scale: Scale) -> Program {
    let bytes = sz(scale, 8 * 1024 * 1024);
    let cells = 0x100_0000u64;
    let mut r = rng(0x617374);
    let mut words = vec![0u64; (bytes / 8) as usize];
    for w in words.iter_mut() {
        *w = r.next_u64();
    }
    let mut b = ProgramBuilder::new("astar");
    b.init_words(cells, &words);
    b.li(Reg::R1, cells as i64);
    b.li(Reg::R2, (cells + bytes) as i64);
    b.li(Reg::R5, 31);
    let top = b.label();
    let closed = b.label();
    b.bind(top);
    b.load(Reg::R10, Reg::R1, 0); // cell flags
    b.load(Reg::R11, Reg::R1, 8); // g-cost
    b.and(Reg::R12, Reg::R10, Reg::R5);
    b.beq(Reg::R12, Reg::R5, closed); // ~3% taken
    b.load(Reg::R13, Reg::R1, 16); // h-cost only for open cells
    b.add(Reg::R14, Reg::R11, Reg::R13);
    compute_chain(&mut b, Reg::R14, 6);
    b.bind(closed);
    // data-dependent skip distance (64..256 B): per-PC strides are
    // irregular, but B-Fetch's branch-time register + offset still pins the
    // next cell's address exactly
    b.srli(Reg::R15, Reg::R10, 3);
    b.li(Reg::R16, 3);
    b.and(Reg::R15, Reg::R15, Reg::R16);
    b.slli(Reg::R15, Reg::R15, 6);
    b.addi(Reg::R1, Reg::R1, 64);
    b.add(Reg::R1, Reg::R1, Reg::R15);
    b.blt(Reg::R1, Reg::R2, top);
    b.halt();
    b.finish()
}

/// soplex: sparse LP — sequential index/value streams with a gather into a
/// large dense vector per nonzero.
fn soplex(scale: Scale) -> Program {
    let nnz_bytes = sz(scale, 8 * 1024 * 1024);
    let vec_bytes = sz(scale, 4 * 1024 * 1024);
    let idx = 0x100_0000u64;
    let val = idx + nnz_bytes;
    let dense = val + nnz_bytes;
    let mut r = rng(0x73706c78);
    let n = (nnz_bytes / 8) as usize;
    let mut idx_words = vec![0u64; n];
    for w in idx_words.iter_mut() {
        *w = dense + (r.next_u64() % (vec_bytes / 8)) * 8;
    }
    let mut b = ProgramBuilder::new("soplex");
    b.init_words(idx, &idx_words);
    b.li(Reg::R1, idx as i64);
    b.li(Reg::R2, val as i64);
    b.li(Reg::R3, (idx + nnz_bytes) as i64);
    let top = b.label();
    b.bind(top);
    b.load(Reg::R10, Reg::R1, 0); // column address (gather target)
    b.load(Reg::R11, Reg::R2, 0); // matrix value
    b.load(Reg::R12, Reg::R10, 0); // x[col]
    b.mul(Reg::R13, Reg::R11, Reg::R12);
    compute_chain(&mut b, Reg::R13, 4);
    b.addi(Reg::R1, Reg::R1, 8);
    b.addi(Reg::R2, Reg::R2, 8);
    b.blt(Reg::R1, Reg::R3, top);
    b.halt();
    b.finish()
}

/// sphinx: acoustic-model scoring — a sequential senone stream indexing
/// into a Gaussian table, four clustered loads per table entry.
fn sphinx(scale: Scale) -> Program {
    let list_bytes = sz(scale, 4 * 1024 * 1024);
    let table_bytes = sz(scale, 8 * 1024 * 1024);
    let list = 0x100_0000u64;
    let table = list + list_bytes;
    let mut r = rng(0x737068);
    let n = (list_bytes / 8) as usize;
    let entries = table_bytes / 512;
    let mut list_words = vec![0u64; n];
    for w in list_words.iter_mut() {
        *w = table + (r.next_u64() % entries) * 512;
    }
    let mut b = ProgramBuilder::new("sphinx");
    b.init_words(list, &list_words);
    b.li(Reg::R1, list as i64);
    b.li(Reg::R2, (list + list_bytes) as i64);
    let top = b.label();
    b.bind(top);
    b.load(Reg::R10, Reg::R1, 0); // gaussian base address
    b.load(Reg::R11, Reg::R10, 0);
    b.load(Reg::R12, Reg::R10, 64);
    b.load(Reg::R13, Reg::R10, 128);
    b.load(Reg::R14, Reg::R10, 192);
    b.add(Reg::R15, Reg::R11, Reg::R12);
    b.add(Reg::R15, Reg::R15, Reg::R13);
    b.add(Reg::R15, Reg::R15, Reg::R14);
    compute_chain(&mut b, Reg::R15, 8);
    b.addi(Reg::R1, Reg::R1, 8);
    b.blt(Reg::R1, Reg::R2, top);
    b.halt();
    b.finish()
}

// ---------------------------------------------------------------------------
// cache-resident / compute kernels (little benefit from any prefetcher)
// ---------------------------------------------------------------------------

/// bzip2: byte-transform style — a small buffer, word-granular accesses and
/// a genuinely data-dependent (hard) branch.
fn bzip2(_scale: Scale) -> Program {
    let bytes = 48 * 1024u64;
    let buf = 0x100_0000u64;
    let mut r = rng(0x627a);
    let mut words = vec![0u64; (bytes / 8) as usize];
    for w in words.iter_mut() {
        *w = r.next_u64();
    }
    let mut b = ProgramBuilder::new("bzip2");
    b.init_words(buf, &words);
    b.li(Reg::R1, buf as i64);
    b.li(Reg::R2, (buf + bytes) as i64);
    b.li(Reg::R5, 1);
    let top = b.label();
    let odd = b.label();
    b.bind(top);
    b.load(Reg::R10, Reg::R1, 0);
    b.and(Reg::R11, Reg::R10, Reg::R5);
    b.bne(Reg::R11, Reg::R0, odd); // ~50% taken: hard branch
    b.xor(Reg::R28, Reg::R28, Reg::R10);
    b.bind(odd);
    b.add(Reg::R28, Reg::R28, Reg::R10);
    b.srli(Reg::R12, Reg::R10, 3);
    b.add(Reg::R29, Reg::R29, Reg::R12);
    b.addi(Reg::R1, Reg::R1, 8);
    b.blt(Reg::R1, Reg::R2, top);
    b.halt();
    b.finish()
}

/// h264ref: motion compensation — short sequential block copies inside a
/// frame that fits in the LLC.
fn h264ref(scale: Scale) -> Program {
    let bytes = sz(scale, 2 * 1024 * 1024).min(2 * 1024 * 1024);
    let src = 0x100_0000u64;
    let dst = src + bytes;
    let mut b = ProgramBuilder::new("h264ref");
    b.li(Reg::R1, src as i64);
    b.li(Reg::R2, dst as i64);
    b.li(Reg::R3, (src + bytes) as i64);
    let outer = b.label();
    b.bind(outer);
    // copy one 128 B block (two lines), then hop 1 KB
    for k in 0..16i64 {
        b.load(Reg::R10, Reg::R1, k * 8);
        b.store(Reg::R10, Reg::R2, k * 8);
    }
    b.addi(Reg::R1, Reg::R1, 1024);
    b.addi(Reg::R2, Reg::R2, 1024);
    b.blt(Reg::R1, Reg::R3, outer);
    b.halt();
    b.finish()
}

/// sjeng: game-tree search — register-computed pseudo-random probes into an
/// LLC-resident transposition table plus branchy evaluation.
fn sjeng(scale: Scale) -> Program {
    let bytes = sz(scale, 512 * 1024).min(512 * 1024);
    let table = 0x100_0000u64;
    let mut b = ProgramBuilder::new("sjeng");
    b.li(Reg::R1, 0x9e37_79b9_i64);
    b.li(Reg::R2, table as i64);
    b.li(Reg::R3, ((bytes / 64) - 1) as i64); // line-index mask (pow2/64)
    b.li(Reg::R4, 0);
    b.li(Reg::R5, 200_000);
    b.li(Reg::R7, 5);
    let top = b.label();
    let miss = b.label();
    b.bind(top);
    // hash = lcg(hash); idx = (hash & mask) * 64
    b.mul(Reg::R1, Reg::R1, Reg::R1);
    b.addi(Reg::R1, Reg::R1, 0x0123_4567);
    b.and(Reg::R10, Reg::R1, Reg::R3);
    b.slli(Reg::R10, Reg::R10, 6);
    b.add(Reg::R11, Reg::R2, Reg::R10);
    b.load(Reg::R12, Reg::R11, 0);
    b.and(Reg::R13, Reg::R12, Reg::R7);
    b.beq(Reg::R13, Reg::R7, miss); // mostly not taken
    b.xor(Reg::R28, Reg::R28, Reg::R12);
    b.bind(miss);
    b.store(Reg::R28, Reg::R11, 8);
    b.addi(Reg::R4, Reg::R4, 1);
    b.blt(Reg::R4, Reg::R5, top);
    b.halt();
    b.finish()
}

/// gamess: quantum chemistry inner loops — pure dependent ALU work over an
/// L1-resident table.
fn gamess(_scale: Scale) -> Program {
    let bytes = 16 * 1024u64;
    let table = 0x100_0000u64;
    let mut b = ProgramBuilder::new("gamess");
    b.li(Reg::R1, table as i64);
    b.li(Reg::R2, (table + bytes) as i64);
    let top = b.label();
    b.bind(top);
    b.load(Reg::R10, Reg::R1, 0);
    compute_chain(&mut b, Reg::R10, 30);
    b.mul(Reg::R28, Reg::R28, Reg::R29);
    b.addi(Reg::R1, Reg::R1, 8);
    b.blt(Reg::R1, Reg::R2, top);
    b.halt();
    b.finish()
}

/// calculix: finite-element solve — small dense blocks, L2-resident,
/// multiply-heavy.
fn calculix(scale: Scale) -> Program {
    let bytes = sz(scale, 128 * 1024).min(128 * 1024);
    let a = 0x100_0000u64;
    let mut b = ProgramBuilder::new("calculix");
    b.li(Reg::R1, a as i64);
    b.li(Reg::R2, (a + bytes) as i64);
    let top = b.label();
    b.bind(top);
    b.load(Reg::R10, Reg::R1, 0);
    b.load(Reg::R11, Reg::R1, 8);
    b.mul(Reg::R12, Reg::R10, Reg::R11);
    compute_chain(&mut b, Reg::R12, 18);
    b.store(Reg::R28, Reg::R1, 16);
    b.addi(Reg::R1, Reg::R1, 32);
    b.blt(Reg::R1, Reg::R2, top);
    b.halt();
    b.finish()
}

/// gromacs: molecular dynamics force loop — an L2-resident particle array
/// with paired loads and substantial compute.
fn gromacs(scale: Scale) -> Program {
    let bytes = sz(scale, 256 * 1024).min(256 * 1024);
    let p = 0x100_0000u64;
    let mut b = ProgramBuilder::new("gromacs");
    b.li(Reg::R1, p as i64);
    b.li(Reg::R2, (p + bytes) as i64);
    let top = b.label();
    b.bind(top);
    b.load(Reg::R10, Reg::R1, 0);
    b.load(Reg::R11, Reg::R1, 8);
    b.load(Reg::R12, Reg::R1, 16);
    b.mul(Reg::R13, Reg::R10, Reg::R11);
    compute_chain(&mut b, Reg::R13, 24);
    b.add(Reg::R28, Reg::R28, Reg::R12);
    b.addi(Reg::R1, Reg::R1, 24);
    b.blt(Reg::R1, Reg::R2, top);
    b.halt();
    b.finish()
}

// ---------------------------------------------------------------------------
// registry
// ---------------------------------------------------------------------------

/// All 18 kernels in the alphabetical order the paper's figures use.
pub fn kernels() -> &'static [Kernel] {
    &[
        Kernel {
            name: "astar",
            prefetch_sensitive: true,
            foa: 0.45,
            build: astar,
        },
        Kernel {
            name: "bwaves",
            prefetch_sensitive: true,
            foa: 0.70,
            build: bwaves,
        },
        Kernel {
            name: "bzip2",
            prefetch_sensitive: false,
            foa: 0.25,
            build: bzip2,
        },
        Kernel {
            name: "cactusADM",
            prefetch_sensitive: true,
            foa: 0.50,
            build: cactus_adm,
        },
        Kernel {
            name: "calculix",
            prefetch_sensitive: false,
            foa: 0.15,
            build: calculix,
        },
        Kernel {
            name: "gamess",
            prefetch_sensitive: false,
            foa: 0.05,
            build: gamess,
        },
        Kernel {
            name: "gromacs",
            prefetch_sensitive: false,
            foa: 0.20,
            build: gromacs,
        },
        Kernel {
            name: "h264ref",
            prefetch_sensitive: false,
            foa: 0.30,
            build: h264ref,
        },
        Kernel {
            name: "hmmer",
            prefetch_sensitive: true,
            foa: 0.40,
            build: hmmer,
        },
        Kernel {
            name: "lbm",
            prefetch_sensitive: true,
            foa: 0.95,
            build: lbm,
        },
        Kernel {
            name: "leslie3d",
            prefetch_sensitive: true,
            foa: 0.75,
            build: leslie3d,
        },
        Kernel {
            name: "libquantum",
            prefetch_sensitive: true,
            foa: 0.90,
            build: libquantum,
        },
        Kernel {
            name: "mcf",
            prefetch_sensitive: true,
            foa: 0.85,
            build: mcf,
        },
        Kernel {
            name: "milc",
            prefetch_sensitive: true,
            foa: 0.80,
            build: milc,
        },
        Kernel {
            name: "sjeng",
            prefetch_sensitive: false,
            foa: 0.10,
            build: sjeng,
        },
        Kernel {
            name: "soplex",
            prefetch_sensitive: true,
            foa: 0.65,
            build: soplex,
        },
        Kernel {
            name: "sphinx",
            prefetch_sensitive: true,
            foa: 0.55,
            build: sphinx,
        },
        Kernel {
            name: "zeusmp",
            prefetch_sensitive: true,
            foa: 0.60,
            build: zeusmp,
        },
    ]
}

/// Looks a kernel up by its SPEC-style name.
pub fn kernel_by_name(name: &str) -> Option<&'static Kernel> {
    kernels().iter().find(|k| k.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfetch_isa::ArchState;

    #[test]
    fn registry_is_alphabetical() {
        let names: Vec<&str> = kernels().iter().map(|k| k.name).collect();
        let mut sorted = names.clone();
        sorted.sort_by_key(|n| n.to_ascii_lowercase());
        assert_eq!(names, sorted);
    }

    #[test]
    fn lookup_by_name() {
        assert!(kernel_by_name("milc").is_some());
        assert!(kernel_by_name("nonesuch").is_none());
    }

    #[test]
    fn mcf_chases_valid_pointers() {
        let p = kernel_by_name("mcf").unwrap().build_small();
        let mut s = ArchState::new(&p);
        s.run(&p, 50_000);
        // the chased value register was actually loaded from the node pool
        assert!(s.retired() > 10_000);
    }

    #[test]
    fn small_scale_reduces_data_size() {
        let small = kernel_by_name("soplex").unwrap().build_small();
        let full = kernel_by_name("soplex").unwrap().build_full();
        let sb: usize = small.data().iter().map(|(_, w)| w.len()).sum();
        let fb: usize = full.data().iter().map(|(_, w)| w.len()).sum();
        assert!(sb < fb);
    }

    #[test]
    fn data_init_is_deterministic() {
        let a = kernel_by_name("astar").unwrap().build_small();
        let b = kernel_by_name("astar").unwrap().build_small();
        assert_eq!(a.data(), b.data());
    }

    #[test]
    fn milc_touches_eight_offsets_per_region() {
        let p = kernel_by_name("milc").unwrap().build_small();
        let mut s = ArchState::new(&p);
        let mut eas = Vec::new();
        for _ in 0..200 {
            if let Some(i) = s.step(&p) {
                if let Some(ea) = i.ea {
                    eas.push(ea);
                }
            }
        }
        // offsets inside the first region span almost the full 2 KB
        let first_region: Vec<u64> = eas.iter().filter(|&&a| a < 0x100_0800).copied().collect();
        assert!(first_region.len() >= 8);
        let span = first_region.iter().max().unwrap() - first_region.iter().min().unwrap();
        assert!(span >= 1500, "milc region span {span}");
    }
}
