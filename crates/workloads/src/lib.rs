//! # bfetch-workloads
//!
//! The 18 synthetic kernels standing in for the SPEC CPU2006 subset the
//! paper evaluates (Section V-A), plus the frequency-of-access (FOA) mix
//! selection for the multiprogrammed experiments.
//!
//! SPEC CPU2006 is proprietary and cannot ship with this reproduction, so
//! each kernel is engineered to the *memory and control behaviour* the
//! characterization literature reports for its namesake: streaming
//! (libquantum, lbm, bwaves), strided stencils (leslie3d, zeusmp,
//! cactusADM, milc), pointer chasing (mcf, astar), indexed sparse gathers
//! (soplex, sphinx), table-driven DP (hmmer), and cache-resident
//! compute/branch codes that see little benefit from any prefetcher
//! (gamess, calculix, gromacs, sjeng, bzip2, h264ref). What matters for
//! the reproduction is the *class* of access pattern, the footprint
//! relative to the cache hierarchy, and branch predictability — these
//! drive every figure in the paper's evaluation.
//!
//! All data initialization is deterministic (seeded in-tree PCG32, see
//! `bfetch-prng`), so runs are bit-reproducible.
//!
//! # Example
//!
//! ```
//! use bfetch_workloads::{kernels, kernel_by_name};
//! assert_eq!(kernels().len(), 18);
//! let k = kernel_by_name("mcf").unwrap();
//! let p = k.build_small();
//! assert!(p.len() > 0);
//! ```

pub mod faults;
/// The workload-authoring guide (`docs/WORKLOADS.md`), included verbatim
/// so its examples run as doctests.
#[doc = include_str!("../../../docs/WORKLOADS.md")]
pub mod guide {}
pub mod kernels;
pub mod mix;
pub mod programs;
pub mod stressors;

pub use faults::{FaultKernel, FaultMode, FAULT_KERNEL};
pub use kernels::{kernel_by_name, kernels, Kernel, Scale};
pub use mix::{select_mixes, Mix, NUM_MIXES};
pub use programs::{program_by_name, programs, workload_by_name, ANALOGS};
pub use stressors::icache_stressor;

#[cfg(test)]
mod tests {
    use super::*;
    use bfetch_isa::ArchState;

    #[test]
    fn all_kernels_run_functionally() {
        for k in kernels() {
            let p = k.build_small();
            let mut s = ArchState::new(&p);
            let n = s.run(&p, 200_000);
            assert!(n > 1_000, "{} executed only {n} instructions", k.name);
        }
    }

    #[test]
    fn kernels_restart_cleanly() {
        for k in kernels() {
            let p = k.build_small();
            let mut s = ArchState::new(&p);
            s.run(&p, 100_000);
            if s.halted() {
                s.restart();
                let n = s.run(&p, 10_000);
                assert!(n > 100, "{} failed to restart", k.name);
            }
        }
    }

    #[test]
    fn expected_sensitivity_split() {
        let sensitive: Vec<&str> = kernels()
            .iter()
            .filter(|k| k.prefetch_sensitive)
            .map(|k| k.name)
            .collect();
        assert_eq!(sensitive.len(), 12);
        assert!(sensitive.contains(&"libquantum"));
        assert!(sensitive.contains(&"mcf"));
        assert!(!sensitive.contains(&"gamess"));
        assert!(!sensitive.contains(&"sjeng"));
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = kernels().iter().map(|k| k.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 18);
    }
}
