//! Multiprogrammed mix selection (Section V-A).
//!
//! The paper selects 29 mixes with the highest shared-cache contention
//! using the frequency-of-access (FOA) inter-thread contention model of
//! Chandra et al. (HPCA 2005). FOA scores a mix by the sum of its members'
//! off-core access frequencies; we use per-kernel scores calibrated from
//! solo profiling runs (stored on each [`Kernel`]) and take the top-scoring
//! combinations, exactly as the methodology describes.

use crate::kernels::{kernels, Kernel};

/// Number of mixes per configuration (the paper evaluates 29).
pub const NUM_MIXES: usize = 29;

/// One multiprogrammed mix.
#[derive(Debug, Clone)]
pub struct Mix {
    /// Mix label (`mix1`..`mix29`, ordered by descending contention).
    pub name: String,
    /// The member kernels.
    pub members: Vec<&'static Kernel>,
    /// The mix's FOA contention score.
    pub score: f64,
}

/// Enumerates all `k`-combinations of the 18 kernels, scores each with the
/// FOA model, and returns the `count` highest-contention mixes (ties broken
/// lexicographically for determinism).
///
/// # Panics
///
/// Panics if `k` is 0 or exceeds the kernel count.
pub fn select_mixes(k: usize, count: usize) -> Vec<Mix> {
    let all = kernels();
    assert!(k >= 1 && k <= all.len(), "invalid mix arity {k}");
    let mut combos: Vec<Vec<usize>> = Vec::new();
    let mut cur = Vec::with_capacity(k);
    fn rec(all: usize, k: usize, start: usize, cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if cur.len() == k {
            out.push(cur.clone());
            return;
        }
        for i in start..all {
            cur.push(i);
            rec(all, k, i + 1, cur, out);
            cur.pop();
        }
    }
    rec(all.len(), k, 0, &mut cur, &mut combos);

    let mut scored: Vec<(f64, Vec<usize>)> = combos
        .into_iter()
        .map(|c| (c.iter().map(|&i| all[i].foa).sum::<f64>(), c))
        .collect();
    scored.sort_by(|a, b| {
        b.0.partial_cmp(&a.0)
            .expect("finite scores")
            .then_with(|| a.1.cmp(&b.1))
    });
    scored
        .into_iter()
        .take(count)
        .enumerate()
        .map(|(i, (score, c))| Mix {
            name: format!("mix{}", i + 1),
            members: c.iter().map(|&j| &all[j]).collect(),
            score,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selects_29_pairs() {
        let mixes = select_mixes(2, NUM_MIXES);
        assert_eq!(mixes.len(), 29);
        for m in &mixes {
            assert_eq!(m.members.len(), 2);
        }
    }

    #[test]
    fn scores_are_descending() {
        let mixes = select_mixes(4, NUM_MIXES);
        for w in mixes.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn top_mix_contains_most_intense_kernels() {
        let mixes = select_mixes(2, 1);
        let names: Vec<&str> = mixes[0].members.iter().map(|k| k.name).collect();
        assert!(names.contains(&"lbm"), "{names:?}");
        assert!(names.contains(&"libquantum"), "{names:?}");
    }

    #[test]
    fn members_are_distinct() {
        for m in select_mixes(4, NUM_MIXES) {
            let mut names: Vec<&str> = m.members.iter().map(|k| k.name).collect();
            names.sort_unstable();
            names.dedup();
            assert_eq!(names.len(), 4, "{}", m.name);
        }
    }

    #[test]
    fn deterministic_selection() {
        let a = select_mixes(2, 5);
        let b = select_mixes(2, 5);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(
                x.members.iter().map(|k| k.name).collect::<Vec<_>>(),
                y.members.iter().map(|k| k.name).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    #[should_panic(expected = "invalid mix arity")]
    fn zero_arity_rejected() {
        select_mixes(0, 1);
    }
}
