//! The real-program workload family: algorithm programs written in text
//! assembly (`crates/workloads/asm/*.s`) and assembled at registration
//! time via [`bfetch_isa::asm`].
//!
//! Where [`kernels`](mod@crate::kernels) are hand-engineered stand-ins tuned
//! to match characterization-literature *statistics*, these are the
//! algorithms themselves — quicksort really sorts, the sieve really finds
//! primes (the functional tests below check the results against Rust
//! reimplementations). Each program names the synthetic kernel it is the
//! real-code analog of ([`ANALOGS`]), which is what the `fig_realprog`
//! cross-validation report keys on: do prefetcher rankings measured on
//! the real algorithm match the synthetic kernel that claims to model it?
//!
//! Programs reuse the [`Kernel`] descriptor (name, FOA score, prefetch
//! sensitivity, `build(Scale)`), so everything downstream — grid points,
//! the harness cache, mixes assembled by hand — treats both families
//! uniformly. Scale is injected by overriding each source's `.default`
//! size constants through [`bfetch_isa::asm::assemble_with`].

use crate::kernels::{Kernel, Scale};
use bfetch_isa::{asm, Program};

/// `(program, synthetic kernel)` analog pairs used by the `fig_realprog`
/// cross-validation report.
pub const ANALOGS: &[(&str, &str)] = &[
    ("blur", "leslie3d"),
    ("bsearch", "astar"),
    ("hashjoin", "soplex"),
    ("matmul", "calculix"),
    ("quicksort", "bzip2"),
    ("sieve", "libquantum"),
];

fn build(src: &str, defs: &[(&str, i64)]) -> Program {
    // The sources ship inside the crate and are assembled in tests and in
    // `scripts/verify.sh`'s asmcheck stage, so a failure here is a build
    // bug, not user input.
    match asm::assemble_with(src, defs) {
        Ok(p) => p,
        Err(e) => panic!("bundled workload program failed to assemble: {e}"),
    }
}

fn quicksort(scale: Scale) -> Program {
    let n = match scale {
        Scale::Small => 1024,
        Scale::Full => 8192,
    };
    build(include_str!("../asm/quicksort.s"), &[("N", n)])
}

fn matmul(scale: Scale) -> Program {
    let n = match scale {
        Scale::Small => 16,
        Scale::Full => 48,
    };
    build(include_str!("../asm/matmul.s"), &[("N", n)])
}

fn blur(scale: Scale) -> Program {
    let (w, h) = match scale {
        Scale::Small => (64, 32),
        Scale::Full => (1024, 256),
    };
    build(include_str!("../asm/blur.s"), &[("W", w), ("H", h)])
}

fn sieve(scale: Scale) -> Program {
    let n = match scale {
        Scale::Small => 8192,
        Scale::Full => 262144,
    };
    build(include_str!("../asm/sieve.s"), &[("N", n)])
}

fn bsearch(scale: Scale) -> Program {
    let (n, nbits) = match scale {
        Scale::Small => (4096, 12),
        Scale::Full => (65536, 16),
    };
    build(
        include_str!("../asm/bsearch.s"),
        &[("N", n), ("NBITS", nbits)],
    )
}

fn hashjoin(scale: Scale) -> Program {
    let (b, nk) = match scale {
        Scale::Small => (12, 1024),
        Scale::Full => (17, 8192),
    };
    build(include_str!("../asm/hashjoin.s"), &[("B", b), ("NK", nk)])
}

/// The real-program registry, alphabetical like [`kernels`](mod@crate::kernels).
/// FOA scores and sensitivity classes track each program's synthetic
/// analog (slightly offset so mix selection never ties).
pub fn programs() -> &'static [Kernel] {
    &[
        Kernel {
            name: "blur",
            prefetch_sensitive: true,
            foa: 0.72,
            build: blur,
        },
        Kernel {
            name: "bsearch",
            prefetch_sensitive: true,
            foa: 0.42,
            build: bsearch,
        },
        Kernel {
            name: "hashjoin",
            prefetch_sensitive: true,
            foa: 0.62,
            build: hashjoin,
        },
        Kernel {
            name: "matmul",
            prefetch_sensitive: false,
            foa: 0.12,
            build: matmul,
        },
        Kernel {
            name: "quicksort",
            prefetch_sensitive: false,
            foa: 0.22,
            build: quicksort,
        },
        Kernel {
            name: "sieve",
            prefetch_sensitive: true,
            foa: 0.88,
            build: sieve,
        },
    ]
}

/// Looks up a real program by name.
pub fn program_by_name(name: &str) -> Option<&'static Kernel> {
    programs().iter().find(|k| k.name == name)
}

/// Looks up a workload in either family: synthetic kernels first, then
/// real programs (names are disjoint, pinned by a test below).
pub fn workload_by_name(name: &str) -> Option<&'static Kernel> {
    crate::kernels::kernel_by_name(name).or_else(|| program_by_name(name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfetch_isa::{ArchState, Reg};

    const MULT: u64 = 0x5851_F42D_4C95_7F2D;
    const INC: u64 = 0x1405_7B7E_F767_814F;

    fn lcg(x: &mut u64) -> u64 {
        *x = x.wrapping_mul(MULT).wrapping_add(INC);
        *x
    }

    fn run_to_halt(p: &Program, budget: u64) -> ArchState {
        let mut s = ArchState::new(p);
        s.run(p, budget);
        assert!(s.halted(), "{} did not halt within {budget} steps", p.name());
        s
    }

    #[test]
    fn registry_is_alphabetical_and_disjoint_from_kernels() {
        let names: Vec<&str> = programs().iter().map(|k| k.name).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
        for n in &names {
            assert!(
                crate::kernels::kernel_by_name(n).is_none(),
                "`{n}` collides with a synthetic kernel"
            );
        }
        assert_eq!(programs().len(), ANALOGS.len());
    }

    #[test]
    fn analogs_name_real_entries_on_both_sides() {
        for (prog, kernel) in ANALOGS {
            assert!(program_by_name(prog).is_some(), "{prog}");
            assert!(crate::kernels::kernel_by_name(kernel).is_some(), "{kernel}");
        }
        assert!(workload_by_name("mcf").is_some());
        assert!(workload_by_name("quicksort").is_some());
        assert!(workload_by_name("nonesuch").is_none());
    }

    #[test]
    fn quicksort_sorts_and_checksums() {
        let p = program_by_name("quicksort").unwrap().build_small();
        let s = run_to_halt(&p, 2_000_000);
        // reproduce the fill, then check memory is its signed-sorted order
        let mut x = 12345u64;
        let mut want: Vec<u64> = (0..1024).map(|_| lcg(&mut x)).collect();
        want.sort_unstable_by_key(|&v| v as i64);
        let sum = want.iter().fold(0u64, |a, &v| a.wrapping_add(v));
        for (i, &v) in want.iter().enumerate() {
            assert_eq!(s.mem().load(0x100_0000 + i as u64 * 8), v, "A[{i}]");
        }
        assert_eq!(s.reg(Reg::R3), sum);
    }

    #[test]
    fn matmul_matches_reference_product() {
        let p = program_by_name("matmul").unwrap().build_small();
        let s = run_to_halt(&p, 2_000_000);
        let n = 16usize;
        let mut x = 777u64;
        let a: Vec<u64> = (0..n * n).map(|_| lcg(&mut x)).collect();
        let b: Vec<u64> = (0..n * n).map(|_| lcg(&mut x)).collect();
        for i in [0usize, 7, n - 1] {
            for j in [0usize, 3, n - 1] {
                let want = (0..n).fold(0u64, |acc, k| {
                    acc.wrapping_add(a[i * n + k].wrapping_mul(b[k * n + j]))
                });
                let got = s.mem().load(0x200_0000 + ((i * n + j) as u64) * 8);
                assert_eq!(got, want, "C[{i}][{j}]");
            }
        }
    }

    #[test]
    fn blur_averages_the_neighborhood() {
        let p = program_by_name("blur").unwrap().build_small();
        let s = run_to_halt(&p, 2_000_000);
        let (w, h) = (64u64, 32u64);
        let src = |y: u64, x: u64| s.mem().load(0x100_0000 + (y * w + x) * 8);
        for (y, x) in [(1u64, 1u64), (5, 20), (h - 2, w - 2)] {
            let mut sum = 0u64;
            for dy in [-1i64, 0, 1] {
                for dx in [-1i64, 0, 1] {
                    sum = sum.wrapping_add(src(
                        y.wrapping_add(dy as u64),
                        x.wrapping_add(dx as u64),
                    ));
                }
            }
            let got = s.mem().load(0x300_0000 + (y * w + x) * 8);
            assert_eq!(got, sum >> 3, "DST[{y}][{x}]");
        }
    }

    #[test]
    fn sieve_counts_exactly_the_primes() {
        let p = program_by_name("sieve").unwrap().build_small();
        let s = run_to_halt(&p, 2_000_000);
        let n = 8192usize;
        let mut composite = vec![false; n];
        let mut count = 0u64;
        for i in 2..n {
            if !composite[i] {
                count += 1;
                let mut j = i * i;
                while j < n {
                    composite[j] = true;
                    j += i;
                }
            }
        }
        assert_eq!(s.reg(Reg::R10), count);
    }

    #[test]
    fn bsearch_hits_exactly_the_even_draws() {
        let p = program_by_name("bsearch").unwrap().build_small();
        let s = run_to_halt(&p, 2_000_000);
        // keys derived from even LCG draws are multiples of STEP and in
        // the table; odd draws add 1 and must miss
        let mut x = 98765u64;
        let hits = (0..4096 / 4).filter(|_| lcg(&mut x) & 1 == 0).count() as u64;
        assert_eq!(s.reg(Reg::R14), hits);
    }

    #[test]
    fn hashjoin_matches_a_reference_join() {
        let p = program_by_name("hashjoin").unwrap().build_small();
        let s = run_to_halt(&p, 2_000_000);
        let (b, nk) = (12u32, 1024u64);
        let phi = 0x9E37_79B9_7F4A_7C15u64;
        let bucket = |key: u64| (key.wrapping_mul(phi) >> (64 - b)) as usize;
        // build: table[bucket] = (key, payload = countdown)
        let mut table = vec![(0u64, 0u64); 1 << b];
        let mut x = 31415u64;
        let mut counter = nk;
        for _ in 0..nk {
            let k = lcg(&mut x);
            table[bucket(k)] = (k, counter);
            counter -= 1;
        }
        // probe: replayed build stream + disjoint stream
        let mut acc = 0u64;
        let (mut x1, mut x2) = (31415u64, 271828u64);
        for _ in 0..nk {
            let k = lcg(&mut x1);
            let (tk, tv) = table[bucket(k)];
            if tk == k {
                acc = acc.wrapping_add(tv);
            }
            let q = lcg(&mut x2);
            let (tk, tv) = table[bucket(q)];
            if tk == q {
                acc = acc.wrapping_add(tv);
            }
        }
        assert_eq!(s.reg(Reg::R14), acc);
    }

    #[test]
    fn programs_restart_deterministically() {
        // restart() preserves memory; a second pass must still halt and
        // leave the same architectural results (the .s headers argue why)
        for k in programs() {
            let p = k.build_small();
            let mut s = ArchState::new(&p);
            s.run(&p, 2_000_000);
            assert!(s.halted(), "{} first pass", k.name);
            let r14 = s.reg(Reg::R14);
            let r10 = s.reg(Reg::R10);
            s.restart();
            s.run(&p, 2_000_000);
            assert!(s.halted(), "{} second pass", k.name);
            assert_eq!(s.reg(Reg::R14), r14, "{} r14 drifted", k.name);
            assert_eq!(s.reg(Reg::R10), r10, "{} r10 drifted", k.name);
        }
    }

    #[test]
    fn full_scale_changes_the_size_constants() {
        // program text is scale-invariant, but the size immediates that
        // .default injects must differ between Small and Full builds
        for k in programs() {
            let small = k.build_small();
            let full = k.build_full();
            assert_eq!(small.len(), full.len(), "{}", k.name);
            assert_ne!(small.insts(), full.insts(), "{}", k.name);
        }
    }
}
