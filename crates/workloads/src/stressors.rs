//! Stressor programs outside the 18-benchmark suite, used by the
//! extension experiments.

use bfetch_isa::{Program, ProgramBuilder, Reg};

/// An instruction-footprint stressor: `blocks` basic blocks (~1 cache line
/// of code each) chained into a single full-period cycle by unconditional
/// jumps, so the front end walks a code footprint far larger than the L1I
/// in a *predictable* order. Commercial workloads look like this (Ferdman
/// et al., MICRO 2008/2011 — cited by the paper's Section III-C), and it
/// is the target of the paper's instruction-prefetching future work: the
/// B-Fetch lookahead already knows the next blocks' PCs, so it can
/// prefetch their instruction lines.
///
/// # Panics
///
/// Panics unless `blocks` is a power of two ≥ 2.
pub fn icache_stressor(blocks: usize) -> Program {
    assert!(
        blocks.is_power_of_two() && blocks >= 2,
        "blocks must be a power of two"
    );
    let mut b = ProgramBuilder::new("icache-stressor");
    let data = 0x80_0000u64; // small, L1D-resident data table
    b.li(Reg::R1, data as i64);
    b.li(Reg::R2, 0);

    let labels: Vec<_> = (0..blocks).map(|_| b.label()).collect();
    // entry: jump into the cycle
    b.jmp(labels[0]);
    for (i, &label) in labels.iter().enumerate() {
        b.bind(label);
        // ~14 instructions (56 B) of work per block: ~1 I-line each
        b.addi(Reg::R2, Reg::R2, 1);
        b.load(Reg::R3, Reg::R1, ((i % 512) * 8) as i64);
        for _ in 0..5 {
            b.add(Reg::R4, Reg::R4, Reg::R3);
            b.xor(Reg::R5, Reg::R5, Reg::R4);
        }
        b.add(Reg::R6, Reg::R5, Reg::R2);
        // full-period LCG permutation: succ(i) = (5i + 1) mod blocks
        let succ = (5 * i + 1) & (blocks - 1);
        b.jmp(labels[succ]);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfetch_isa::ArchState;
    use std::collections::HashSet;

    #[test]
    fn visits_every_block() {
        let p = icache_stressor(64);
        let mut s = ArchState::new(&p);
        let mut blocks_seen = HashSet::new();
        for _ in 0..64 * 20 {
            if let Some(i) = s.step(&p) {
                if i.inst.is_branch() {
                    blocks_seen.insert(i.next_idx);
                }
            }
        }
        assert_eq!(blocks_seen.len(), 64, "the LCG chain must be a full cycle");
    }

    #[test]
    fn code_footprint_exceeds_l1i() {
        let p = icache_stressor(4096);
        assert!(
            p.len() * 4 > 64 * 1024,
            "code footprint {} B must exceed the 64 KB L1I",
            p.len() * 4
        );
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_bad_block_count() {
        icache_stressor(100);
    }
}
