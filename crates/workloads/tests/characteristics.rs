//! Access-pattern characterization tests: each kernel must actually
//! exhibit the behaviour class its SPEC namesake is modelled on, since the
//! paper's results hinge on those classes.

use bfetch_isa::{ArchState, ExecInfo, Program};
use bfetch_workloads::kernel_by_name;

/// Collects the first `n` load effective addresses of a kernel.
fn load_eas(p: &Program, n: usize) -> Vec<u64> {
    let mut s = ArchState::new(p);
    let mut eas = Vec::with_capacity(n);
    while eas.len() < n {
        match s.step(p) {
            Some(ExecInfo {
                ea: Some(ea), inst, ..
            }) if inst.mem_info().map(|m| m.is_load).unwrap_or(false) => eas.push(ea),
            Some(_) => {}
            None => break,
        }
    }
    eas
}

/// Fraction of consecutive deltas equal to the modal delta.
fn stride_regularity(eas: &[u64]) -> f64 {
    use std::collections::HashMap;
    let deltas: Vec<i64> = eas.windows(2).map(|w| w[1] as i64 - w[0] as i64).collect();
    let mut counts: HashMap<i64, usize> = HashMap::new();
    for d in &deltas {
        *counts.entry(*d).or_default() += 1;
    }
    let modal = counts.values().copied().max().unwrap_or(0);
    modal as f64 / deltas.len().max(1) as f64
}

#[test]
fn libquantum_is_perfectly_sequential() {
    let p = kernel_by_name("libquantum").unwrap().build_small();
    let eas = load_eas(&p, 2000);
    assert!(
        stride_regularity(&eas) > 0.99,
        "{}",
        stride_regularity(&eas)
    );
}

#[test]
fn mcf_mixes_scan_and_chase() {
    let p = kernel_by_name("mcf").unwrap().build_small();
    let eas = load_eas(&p, 3000);
    let reg = stride_regularity(&eas);
    // the interleaved pointer chase keeps the modal delta well below 1.0
    // but the arc scan keeps it well above chance
    assert!(
        (0.05..0.8).contains(&reg),
        "mcf should be a scan/chase mix, regularity {reg}"
    );
}

#[test]
fn milc_touches_wide_spatial_regions() {
    let p = kernel_by_name("milc").unwrap().build_small();
    let eas = load_eas(&p, 800);
    // consecutive loads of a site span nearly the full 2 KB region
    let mut spans = Vec::new();
    for chunk in eas.chunks(8) {
        if chunk.len() == 8 {
            spans.push(chunk.iter().max().unwrap() - chunk.iter().min().unwrap());
        }
    }
    let wide = spans.iter().filter(|&&s| s >= 1500).count();
    assert!(
        wide * 2 > spans.len(),
        "milc sites must span their region: {spans:?}"
    );
}

#[test]
fn gamess_footprint_fits_l1() {
    let p = kernel_by_name("gamess").unwrap().build_small();
    let eas = load_eas(&p, 5000);
    let min = *eas.iter().min().unwrap();
    let max = *eas.iter().max().unwrap();
    assert!(max - min <= 64 * 1024, "gamess footprint {}", max - min);
}

#[test]
fn soplex_gathers_over_a_large_vector() {
    let p = kernel_by_name("soplex").unwrap().build_small();
    let eas = load_eas(&p, 3000);
    // every third load is the gather; its targets must be spread widely
    let gathers: Vec<u64> = eas.iter().skip(2).step_by(3).copied().collect();
    let min = *gathers.iter().min().unwrap();
    let max = *gathers.iter().max().unwrap();
    assert!(max - min > 100_000, "gather spread {}", max - min);
}

#[test]
fn astar_strides_are_data_dependent() {
    let p = kernel_by_name("astar").unwrap().build_small();
    let eas = load_eas(&p, 2000);
    // cell-record loads stride irregularly: several distinct deltas occur
    let firsts: Vec<u64> = eas
        .iter()
        .copied()
        .filter(|&a| a.is_multiple_of(64))
        .collect();
    let reg = stride_regularity(&firsts);
    assert!(reg < 0.9, "astar must not be a single-stride stream: {reg}");
}

#[test]
fn stencils_run_multiple_concurrent_streams() {
    for name in ["lbm", "leslie3d", "cactusADM", "zeusmp"] {
        let p = kernel_by_name(name).unwrap().build_small();
        let eas = load_eas(&p, 600);
        // cluster addresses into megabyte buckets: stencils touch several
        let mut buckets: Vec<u64> = eas.iter().map(|a| a >> 17).collect();
        buckets.sort_unstable();
        buckets.dedup();
        assert!(buckets.len() >= 2, "{name} should touch multiple streams");
    }
}

#[test]
fn branchy_kernels_have_data_dependent_branches() {
    for name in ["bzip2", "mcf", "astar", "sjeng"] {
        let k = kernel_by_name(name).unwrap();
        let p = k.build_small();
        let mut s = ArchState::new(&p);
        let mut taken = 0u64;
        let mut total = 0u64;
        for _ in 0..60_000 {
            match s.step(&p) {
                Some(i) if i.inst.is_cond_branch() => {
                    total += 1;
                    taken += i.taken as u64;
                }
                Some(_) => {}
                None => break,
            }
        }
        let ratio = taken as f64 / total.max(1) as f64;
        assert!(
            (0.02..0.98).contains(&ratio),
            "{name}: conditional branches should vary, taken ratio {ratio}"
        );
    }
}
