//! Round-trip equivalence between the builder-made synthetic kernels and
//! the text-assembly frontend: `disassemble(kernel)` must reassemble to
//! the identical program — same instruction stream, same data image —
//! for every registry kernel and every bundled `.s` program, at both
//! scales. This pins the two program-construction paths to one ISA.

use bfetch_isa::{assemble, disassemble};
use bfetch_workloads::{kernels, programs};

#[test]
fn every_synthetic_kernel_round_trips_through_text() {
    for k in kernels() {
        for p in [k.build_small(), k.build_full()] {
            let text = disassemble(&p);
            let again = assemble(&text)
                .unwrap_or_else(|e| panic!("{} disassembly rejected: {e}", k.name));
            assert_eq!(p.name(), again.name(), "{}", k.name);
            assert_eq!(p.insts(), again.insts(), "{}", k.name);
            assert_eq!(p.data(), again.data(), "{}", k.name);
        }
    }
}

#[test]
fn every_real_program_round_trips_through_text() {
    for k in programs() {
        let p = k.build_small();
        let text = disassemble(&p);
        let again =
            assemble(&text).unwrap_or_else(|e| panic!("{} disassembly rejected: {e}", k.name));
        assert_eq!(p.insts(), again.insts(), "{}", k.name);
        assert_eq!(p.data(), again.data(), "{}", k.name);
    }
}
