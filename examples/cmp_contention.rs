//! Multiprogrammed CMP contention: run the highest-contention 2-app mix on
//! a shared-LLC CMP and show how prefetching accuracy translates into
//! weighted speedup — the paper's "friendly fire" scenario.
//!
//! ```sh
//! cargo run --release --example cmp_contention
//! ```

use bfetch::sim::{PrefetcherKind, SimConfig, SimSession};
use bfetch::stats::{weighted_speedup, Table};
use bfetch::workloads::select_mixes;

fn main() {
    let mix = &select_mixes(2, 1)[0];
    let programs: Vec<_> = mix.members.iter().map(|k| k.build_small()).collect();
    println!(
        "mix: {} + {} (FOA score {:.2})",
        mix.members[0].name, mix.members[1].name, mix.score
    );

    let mut t = Table::new(vec![
        "prefetcher".into(),
        "ipc core0".into(),
        "ipc core1".into(),
        "weighted speedup".into(),
        "useless prefetches".into(),
    ]);
    let mut ws_baseline = None;
    for kind in [
        PrefetcherKind::None,
        PrefetcherKind::Stride,
        PrefetcherKind::Sms,
        PrefetcherKind::BFetch,
    ] {
        let cfg = SimConfig::baseline().with_prefetcher(kind);
        let solo: Vec<f64> = programs
            .iter()
            .map(|p| {
                SimSession::new(cfg.clone())
                    .instructions(80_000)
                    .run_one(p)
                    .expect("solo run succeeds")
                    .into_single()
                    .ipc()
            })
            .collect();
        let multi = SimSession::new(cfg.clone())
            .instructions(80_000)
            .run(&programs)
            .expect("mix run succeeds")
            .results;
        let pairs: Vec<(f64, f64)> = multi
            .iter()
            .zip(solo.iter())
            .map(|(r, &s)| (r.ipc(), s))
            .collect();
        let ws = weighted_speedup(&pairs);
        let ws_norm = match ws_baseline {
            None => {
                ws_baseline = Some(ws);
                1.0
            }
            Some(b) => ws / b,
        };
        let useless: u64 = multi.iter().map(|r| r.mem.prefetch_useless).sum();
        t.row(vec![
            kind.name().into(),
            format!("{:.3}", multi[0].ipc()),
            format!("{:.3}", multi[1].ipc()),
            format!("{ws_norm:.3}"),
            useless.to_string(),
        ]);
    }
    print!("{t}");
    println!();
    println!("inaccurate prefetch streams knock the co-runner's data out of the");
    println!("shared L3 and queue behind its DRAM requests; B-Fetch's confidence");
    println!("mechanisms keep its useless-prefetch count low.");
}
