//! Build your own workload: assemble a pointer-walking kernel with the
//! `ProgramBuilder`, run it through the simulator, and inspect what the
//! B-Fetch engine learned about it.
//!
//! ```sh
//! cargo run --release --example custom_kernel
//! ```

use bfetch::isa::{ArchState, ProgramBuilder, Reg};
use bfetch::sim::{PrefetcherKind, SimConfig, SimSession};

fn main() {
    // A linked ring of 4096 nodes laid out 128 bytes apart: each node's
    // first word points at the next node (here: sequentially, so the walk
    // is predictable from the node register plus a learned delta).
    let nodes = 4096u64;
    let stride = 128u64;
    let base = 0x20_0000u64;
    let mut b = ProgramBuilder::new("ring-walk");
    let ring: Vec<u64> = (0..nodes)
        .flat_map(|i| {
            let next = base + ((i + 1) % nodes) * stride;
            let mut words = vec![next, i];
            words.resize((stride / 8) as usize, 0);
            words
        })
        .collect();
    b.init_words(base, &ring);

    b.li(Reg::R1, base as i64); // current node
    b.li(Reg::R2, 0); // step counter
    b.li(Reg::R3, 1_000_000);
    let top = b.label();
    b.bind(top);
    b.load(Reg::R4, Reg::R1, 8); // payload
    b.add(Reg::R5, Reg::R5, Reg::R4);
    b.load(Reg::R1, Reg::R1, 0); // follow the pointer
    b.addi(Reg::R2, Reg::R2, 1);
    b.blt(Reg::R2, Reg::R3, top);
    b.halt();
    let program = b.finish();

    // sanity: functional walk visits every node
    let mut s = ArchState::new(&program);
    s.run(&program, 10_000);
    println!(
        "functional check: r1 = {:#x} after 10k steps",
        s.reg(Reg::R1)
    );

    let baseline = SimSession::new(SimConfig::baseline())
        .instructions(100_000)
        .run_one(&program)
        .expect("simulation succeeds")
        .into_single();
    let cfg = SimConfig::baseline().with_prefetcher(PrefetcherKind::BFetch);
    let bf = SimSession::new(cfg)
        .instructions(100_000)
        .run_one(&program)
        .expect("simulation succeeds")
        .into_single();
    println!("baseline IPC : {:.3}", baseline.ipc());
    println!(
        "B-Fetch IPC  : {:.3}  ({:.2}x)",
        bf.ipc(),
        bf.ipc() / baseline.ipc()
    );
    if let Some(e) = bf.engine {
        println!(
            "engine       : depth {:.1}, {} candidates, {} filtered",
            e.mean_depth(),
            e.candidates,
            e.filtered
        );
    }
    println!();
    println!("the walk's node register advances by a constant delta, so the MHT's");
    println!("loop mechanism predicts future nodes even though every load is a");
    println!("pointer dereference a demand-miss prefetcher would treat as random.");
}
