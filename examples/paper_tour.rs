//! A guided tour of the paper's mechanism, component by component: builds
//! the Listing-1 loop from Section IV-B2 by hand, drives each B-Fetch
//! structure the way the simulator does, and shows Equation 3 producing
//! the prefetch stream.
//!
//! ```sh
//! cargo run --release --example paper_tour
//! ```

use bfetch::bpred::{
    CompositeConfidence, ConfidenceConfig, PathConfidence, TournamentConfig, TournamentPredictor,
};
use bfetch::core::{BFetchConfig, BFetchEngine, DecodedBranch};

fn main() {
    println!("== Listing 1 (Section IV-B2) ==");
    println!("Start: load r1, 24(r2)");
    println!("       lda  r2, r2, #128");
    println!("       cmpeq r2, r3, r1");
    println!("Br1:   beq  r1, Start");
    println!();

    // ---- the shared predictor learns the loop branch --------------------
    let br1 = 0x40_0400u64;
    let start = 0x40_03f0u64;
    let mut bp = TournamentPredictor::new(TournamentConfig::baseline());
    let mut conf = CompositeConfidence::new(ConfidenceConfig::baseline());
    let mut ghr = 0u64;
    for _ in 0..500 {
        let p = bp.predict(br1, ghr);
        conf.train(br1, ghr, p.strength, p.taken);
        bp.update(br1, ghr, true);
        ghr = (ghr << 1) | 1;
    }
    let c = conf.estimate(br1, ghr, bp.predict(br1, ghr).strength);
    println!("1. branch predictor trained: Br1 predicted taken,");
    println!("   composite confidence = {c:.3}");

    // ---- path confidence decides the lookahead depth --------------------
    let mut path = PathConfidence::new(0.75);
    let mut depth = 0;
    while path.extend(c) {
        depth += 1;
        if depth >= 31 {
            break;
        }
    }
    println!("2. path confidence 0.75 sustains a lookahead of ~{depth} blocks");
    println!("   (the paper reports an average depth of 8 BBs)");
    println!();

    // ---- the engine learns the loop's register transformation -----------
    let mut engine = BFetchEngine::new(BFetchConfig::baseline());
    let mut regs = [0u64; 32];
    regs[2] = 0x1_0000; // r2: the walking pointer
    let mut seq = 0;
    for iter in 0..6 {
        engine.on_commit_branch(br1, true, true, start, br1 + 4, &regs);
        engine.on_commit_load(start, 2, regs[2] + 24); // load r1, 24(r2)
        println!(
            "   commit iteration {iter}: r2 = {:#x}, load EA = {:#x}",
            regs[2],
            regs[2] + 24
        );
        regs[2] += 128; // lda r2, r2, #128
        seq += 1;
        engine.post_regwrite(2, regs[2], seq, seq);
    }
    engine.tick(1_000, &bp, &conf); // let the ARF sampling latches mature
    println!("3. MHT learned: Offset = 24, LoopDelta = 128 (Equations 1 & 3)");
    println!();

    // ---- decode the branch once more and watch the walk -----------------
    engine.on_branch_decoded(DecodedBranch {
        pc: br1,
        predicted_taken: true,
        taken_target: start,
        fallthrough: br1 + 4,
        is_cond: true,
        ghr_before: ghr,
        confidence: c,
    });
    engine.tick(1_001, &bp, &conf);
    let prefetches: Vec<_> = engine.pop_prefetches(32).collect();
    println!(
        "4. one lookahead walk produced {} prefetches:",
        prefetches.len()
    );
    for (i, p) in prefetches.iter().take(6).enumerate() {
        println!(
            "   iteration +{}: prefetch {:#x}  (= r2 + 24 + {} x 128)",
            i + 1,
            p.addr,
            i + 1
        );
    }
    let stats = engine.stats();
    println!();
    println!(
        "engine stats: {} walk, {} blocks traversed, mean depth {:.1}",
        stats.lookaheads,
        stats.branches_walked,
        stats.mean_depth()
    );
    println!();
    println!("every address above targets a *future* iteration, before any miss");
    println!("occurs — the property that separates B-Fetch from miss-triggered");
    println!("prefetchers (Section II).");
}
