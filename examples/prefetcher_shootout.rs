//! Prefetcher shootout: compare every prefetcher in the repository on a
//! workload chosen from the command line (default: a memory-bound stencil).
//!
//! ```sh
//! cargo run --release --example prefetcher_shootout -- mcf
//! ```

use bfetch::sim::{PrefetcherKind, SimConfig, SimSession};

/// One measured run through the session API.
fn run(program: &bfetch::isa::Program, cfg: SimConfig) -> bfetch::sim::RunResult {
    SimSession::new(cfg)
        .instructions(100_000)
        .run_one(program)
        .expect("simulation succeeds")
        .into_single()
}
use bfetch::stats::Table;
use bfetch::workloads::{kernel_by_name, kernels};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "leslie3d".into());
    let kernel = kernel_by_name(&name).unwrap_or_else(|| {
        let names: Vec<&str> = kernels().iter().map(|k| k.name).collect();
        panic!("unknown kernel {name:?}; choose one of {names:?}");
    });
    let program = kernel.build_small();

    let base = run(&program, SimConfig::baseline());
    let mut t = Table::new(vec![
        "prefetcher".into(),
        "IPC".into(),
        "speedup".into(),
        "L1D miss".into(),
        "pf useful".into(),
        "pf useless".into(),
        "accuracy".into(),
    ]);
    for kind in [
        PrefetcherKind::None,
        PrefetcherKind::NextN(4),
        PrefetcherKind::Stride,
        PrefetcherKind::Sms,
        PrefetcherKind::BFetch,
        PrefetcherKind::Perfect,
    ] {
        let cfg = SimConfig::baseline().with_prefetcher(kind);
        let r = run(&program, cfg);
        t.row(vec![
            kind.name().into(),
            format!("{:.3}", r.ipc()),
            format!("{:.2}x", r.ipc() / base.ipc()),
            r.mem.l1d_misses.to_string(),
            r.mem.prefetch_useful.to_string(),
            r.mem.prefetch_useless.to_string(),
            format!("{:.0}%", 100.0 * r.mem.prefetch_accuracy()),
        ]);
    }
    println!(
        "workload: {} (small scale, 100k measured instructions)",
        kernel.name
    );
    print!("{t}");
}
