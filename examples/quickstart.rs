//! Quickstart: simulate one SPEC-like kernel with and without B-Fetch and
//! print the speedup plus the engine's internal behaviour.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use bfetch::sim::{PrefetcherKind, SimConfig, SimSession};
use bfetch::workloads::kernel_by_name;

fn main() {
    let kernel = kernel_by_name("libquantum").expect("known kernel");
    let program = kernel.build_small();

    let baseline = SimSession::new(SimConfig::baseline())
        .instructions(100_000)
        .run_one(&program)
        .expect("simulation succeeds")
        .into_single();
    let bfetch_cfg = SimConfig::baseline().with_prefetcher(PrefetcherKind::BFetch);
    let bfetch = SimSession::new(bfetch_cfg)
        .instructions(100_000)
        .run_one(&program)
        .expect("simulation succeeds")
        .into_single();

    println!("workload      : {}", kernel.name);
    println!("baseline IPC  : {:.3}", baseline.ipc());
    println!("B-Fetch IPC   : {:.3}", bfetch.ipc());
    println!("speedup       : {:.2}x", bfetch.ipc() / baseline.ipc());
    println!("bp miss rate  : {:.2}%", 100.0 * bfetch.bp_miss_rate());
    println!(
        "prefetches    : {} issued, {} useful, {} useless, {} late",
        bfetch.mem.prefetch_issued,
        bfetch.mem.prefetch_useful,
        bfetch.mem.prefetch_useless,
        bfetch.mem.prefetch_late
    );
    if let Some(e) = bfetch.engine {
        println!(
            "engine        : {} lookaheads, mean depth {:.1} branches, {} filtered",
            e.lookaheads,
            e.mean_depth(),
            e.filtered
        );
    }
}
