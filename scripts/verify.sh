#!/usr/bin/env sh
# Tier-1 verification, fully offline: build, test, lint.
#
#   sh scripts/verify.sh          # what CI runs
#   BFETCH_PROP_CASES=200 sh scripts/verify.sh   # heavier property sweeps
#
# The workspace has no external dependencies, so this needs no network
# and no pre-populated cargo registry.
set -eu

cd "$(dirname "$0")/.."

echo "==> tier-1: release build (whole workspace: the root package does
#   not depend on bfetch-bench, so a bare 'cargo build' would leave the
#   harness binaries used below stale or missing)"
cargo build --release --workspace

echo "==> tier-1: root package tests"
cargo test -q

echo "==> workspace tests"
cargo test --workspace -q

echo "==> clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> rustdoc (deny warnings) + doctests"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q
cargo test --workspace --doc -q

echo "==> timing benches compile (criterion-benches feature)"
cargo check -p bfetch-bench --benches --features criterion-benches -q

echo "==> simulator throughput smoke + mix8 regression gate (ext_simspeed --quick)"
# The gate compares the mix8/geomean *ratio* against the committed
# quick_baseline run, so it is immune to overall VM speed and only trips
# when the CMP stepping path itself regresses by more than 20%.
target/release/ext_simspeed --quick --label verify --out target/BENCH_simspeed.json \
  --gate BENCH_simspeed.json --gate-label quick_baseline --gate-pct 20

echo "==> CPI-stack smoke (ext_cpistack --quick) + timeline export"
target/release/ext_cpistack --quick --small --kernels mcf,libquantum \
  --timeline target/BENCH_cpistack_timeline.jsonl
test -s target/BENCH_cpistack_timeline.jsonl
grep -q '"event":"timeline_sample"' target/BENCH_cpistack_timeline.jsonl

echo "==> harness determinism: serial vs parallel vs cached stdout"
BIN=target/release/fig08_single
CACHE=$(mktemp -d)
trap 'rm -rf "$CACHE"' EXIT
ARGS="--small --instructions 20000 --warmup 5000 --cache-dir $CACHE"
$BIN $ARGS --threads 1 >"$CACHE/serial.txt" 2>/dev/null
$BIN $ARGS --threads 4 >"$CACHE/parallel.txt" 2>/dev/null
$BIN $ARGS --threads 4 >"$CACHE/cached.txt" 2>"$CACHE/cached.err"
cmp "$CACHE/serial.txt" "$CACHE/parallel.txt"
cmp "$CACHE/serial.txt" "$CACHE/cached.txt"
grep -q " 0 simulated" "$CACHE/cached.err"

echo "==> profiler: compile-out state + profiled run byte-identity + trace well-formedness"
# The prof crate's own suite runs with capture compiled *out* (its
# default feature set), and the bench stack must still build that way.
cargo test -q -p bfetch-prof
cargo check -q -p bfetch-bench --lib --no-default-features
# A profiled sweep must leave stdout byte-identical and produce a
# loadable Chrome trace plus the aggregate reports as sidecar files.
$BIN $ARGS --threads 1 --profile "$CACHE/prof" >"$CACHE/profiled.txt" 2>/dev/null
cmp "$CACHE/serial.txt" "$CACHE/profiled.txt"
test -s "$CACHE/prof/report.json"
test -s "$CACHE/prof/report.txt"
target/release/ext_profile --check-trace "$CACHE/prof/trace.json"

echo "==> measured phase breakdown: coverage gate (ext_profile --quick)"
# The instrumented coordinator-side phases must tile sim.run: falling
# coverage means a new engine phase went uninstrumented. 90% leaves
# noise headroom over the ~97% both engines measure.
target/release/ext_profile --quick --min-coverage 90 \
  --out target/PROF_phase_report.json >/dev/null

echo "==> parallel engine: cross-thread-count determinism + worker-panic typing"
cargo test -q -p bfetch-sim --test determinism

echo "==> CMP figures smoke: sim-threads 1 vs 4 byte-identical stdout"
FIG=target/release/fig16_cmp
$FIG --quick --small --no-cache -j 1 >"$CACHE/cmp_s1.txt"
$FIG --quick --small --no-cache -j 1 --sim-threads 4 >"$CACHE/cmp_s4.txt"
cmp "$CACHE/cmp_s1.txt" "$CACHE/cmp_s4.txt"
target/release/fig17_scale --quick --small --no-cache -j 1 --sim-threads 4 >/dev/null

echo "==> assembler gate: every bundled .s program assembles (asmcheck)"
target/release/asmcheck crates/workloads/asm/*.s

echo "==> real-program cross-validation smoke: thread-count byte-identity"
RP=target/release/fig_realprog
$RP --quick --small --no-cache -j 1 >"$CACHE/rp_j1.txt" 2>/dev/null
$RP --quick --small --no-cache -j 4 >"$CACHE/rp_j4.txt" 2>/dev/null
cmp "$CACHE/rp_j1.txt" "$CACHE/rp_j4.txt"
grep -q "pairs fully agree" "$CACHE/rp_j1.txt"

echo "==> fault injection: panic / livelock / runaway isolation end to end"
cargo test -q -p bfetch-bench --test faults

echo "==> cache GC: stranded tmp + stale schema swept, byte cap enforced"
printf 'half-written entry' >"$CACHE/deadbeefdeadbeef.json.tmp.99999"
printf '{"schema":1,"key":"v1|old","results":[]}' >"$CACHE/0123456789abcdef.json"
$BIN $ARGS --threads 4 --cache-gc --cache-cap 16K >/dev/null 2>"$CACHE/gc.err"
grep -q "cache-gc:" "$CACHE/gc.err"
grep -q "1 tmp" "$CACHE/gc.err"
grep -q "1 stale" "$CACHE/gc.err"
test ! -e "$CACHE/deadbeefdeadbeef.json.tmp.99999"
test ! -e "$CACHE/0123456789abcdef.json"
KEPT=$(sed -n 's/.*cache-gc: kept [0-9]* entries (\([0-9]*\) bytes).*/\1/p' "$CACHE/gc.err")
[ -n "$KEPT" ] && [ "$KEPT" -le 16384 ] || {
  echo "GC left $KEPT bytes, cap is 16384"; exit 1; }

echo "==> simd feature matrix: explicit SSE2 probes, byte-identical results"
# Rebuilds the workspace with the opt-in `simd` feature (forwarded from
# every crate level), reruns the mem-crate suite (includes the
# scalar-vs-vectorized equivalence property test), and byte-compares a
# CMP figure's stdout against the default build's run from above.
cargo build --release --workspace --features bfetch-bench/simd
cargo test -q -p bfetch-mem --features simd
$FIG --quick --small --no-cache -j 1 >"$CACHE/cmp_simd.txt"
cmp "$CACHE/cmp_s1.txt" "$CACHE/cmp_simd.txt"

echo "verify: OK"
