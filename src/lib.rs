//! # bfetch
//!
//! Facade crate for the B-Fetch reproduction (Kadjo et al., MICRO 2014):
//! branch-prediction directed data prefetching for chip multiprocessors,
//! together with the full simulation substrate it is evaluated on.
//!
//! The implementation is split into focused crates, re-exported here:
//!
//! * [`isa`] — the RISC execution substrate (registers, instructions,
//!   functional state, program builder).
//! * [`bpred`] — tournament branch predictor, BTB, composite branch
//!   confidence, path confidence.
//! * [`mem`] — cache hierarchy, MSHRs, DRAM, prefetch-aware statistics.
//! * [`prefetch`] — the prefetcher framework and the paper's comparison
//!   points: Stride, SMS, Next-N.
//! * [`core`] — the B-Fetch engine itself (DBR, Branch Trace Cache, Memory
//!   History Table, Alternate Register File, per-load filter).
//! * [`sim`] — the cycle-stepped out-of-order core and CMP driver.
//! * [`workloads`] — the 18 SPEC-CPU2006-inspired synthetic kernels and the
//!   FOA mix selection.
//! * [`stats`] — geometric means, weighted speedup, CDFs, text tables.
//!
//! # Quickstart
//!
//! ```
//! use bfetch::sim::{SimConfig, PrefetcherKind, run_single};
//! use bfetch::workloads::kernel_by_name;
//!
//! let program = kernel_by_name("libquantum").expect("known kernel").build_small();
//! let baseline = run_single(&program, &SimConfig::baseline(), 50_000);
//! let mut cfg = SimConfig::baseline();
//! cfg.prefetcher = PrefetcherKind::BFetch;
//! let bfetch = run_single(&program, &cfg, 50_000);
//! assert!(bfetch.ipc() > 0.0 && baseline.ipc() > 0.0);
//! ```

pub use bfetch_bpred as bpred;
pub use bfetch_core as core;
pub use bfetch_isa as isa;
pub use bfetch_mem as mem;
pub use bfetch_prefetch as prefetch;
pub use bfetch_sim as sim;
pub use bfetch_stats as stats;
pub use bfetch_workloads as workloads;
