//! Whole-system integration tests: kernels → simulator → prefetchers.

use bfetch::isa::Program;
use bfetch::sim::{PrefetcherKind, RunResult, SimConfig, SimSession};
use bfetch::workloads::{kernel_by_name, kernels};

fn run_single(p: &Program, cfg: &SimConfig, insts: u64) -> RunResult {
    SimSession::new(cfg.clone())
        .instructions(insts)
        .run_one(p)
        .expect("run succeeds")
        .into_single()
}

fn cfg(kind: PrefetcherKind) -> SimConfig {
    let mut c = SimConfig::baseline().with_prefetcher(kind);
    c.warmup_insts = 20_000;
    c
}

const INSTS: u64 = 40_000;

#[test]
fn all_kernels_simulate_under_every_prefetcher() {
    for k in kernels() {
        let p = k.build_small();
        for kind in [
            PrefetcherKind::None,
            PrefetcherKind::Stride,
            PrefetcherKind::Sms,
            PrefetcherKind::BFetch,
        ] {
            let r = run_single(&p, &cfg(kind), 20_000);
            assert!(
                r.ipc() > 0.01 && r.ipc() <= 4.0,
                "{} under {} gave IPC {}",
                k.name,
                kind.name(),
                r.ipc()
            );
        }
    }
}

#[test]
fn perfect_prefetcher_is_an_upper_bound_on_sensitive_kernels() {
    for name in ["libquantum", "lbm", "leslie3d"] {
        let p = kernel_by_name(name).unwrap().build_small();
        let perfect = run_single(&p, &cfg(PrefetcherKind::Perfect), INSTS).ipc();
        for kind in [
            PrefetcherKind::Stride,
            PrefetcherKind::Sms,
            PrefetcherKind::BFetch,
        ] {
            let real = run_single(&p, &cfg(kind), INSTS).ipc();
            assert!(
                real <= perfect * 1.02,
                "{name}: {} ({real}) beat perfect ({perfect})",
                kind.name()
            );
        }
    }
}

#[test]
fn bfetch_speeds_up_streaming_kernels() {
    for name in [
        "libquantum",
        "lbm",
        "leslie3d",
        "zeusmp",
        "cactusADM",
        "hmmer",
    ] {
        let p = kernel_by_name(name).unwrap().build_small();
        let base = run_single(&p, &cfg(PrefetcherKind::None), INSTS).ipc();
        let bf = run_single(&p, &cfg(PrefetcherKind::BFetch), INSTS).ipc();
        assert!(bf > base * 1.15, "{name}: bfetch {bf} vs baseline {base}");
    }
}

#[test]
fn bfetch_never_badly_hurts_any_kernel() {
    for k in kernels() {
        let p = k.build_small();
        let base = run_single(&p, &cfg(PrefetcherKind::None), INSTS).ipc();
        let bf = run_single(&p, &cfg(PrefetcherKind::BFetch), INSTS).ipc();
        assert!(
            bf > base * 0.85,
            "{}: bfetch {bf} badly below baseline {base}",
            k.name
        );
    }
}

#[test]
fn cache_resident_kernels_see_no_prefetch_effect() {
    for name in ["bzip2", "sjeng", "h264ref"] {
        let p = kernel_by_name(name).unwrap().build_small();
        // a full warm pass first so the measurement window is steady-state
        let mut c = cfg(PrefetcherKind::None);
        c.warmup_insts = 120_000;
        let base = run_single(&p, &c, INSTS).ipc();
        let mut c = cfg(PrefetcherKind::BFetch);
        c.warmup_insts = 120_000;
        let bf = run_single(&p, &c, INSTS).ipc();
        let ratio = bf / base;
        assert!(
            (0.95..1.1).contains(&ratio),
            "{name}: expected ~1.0, got {ratio}"
        );
    }
}

#[test]
fn milc_is_an_sms_corner_case() {
    // Section V-B1: SMS's 2KB regions beat B-Fetch's 256B pattern reach
    let p = kernel_by_name("milc").unwrap().build_small();
    let base = run_single(&p, &cfg(PrefetcherKind::None), INSTS).ipc();
    let sms = run_single(&p, &cfg(PrefetcherKind::Sms), INSTS).ipc();
    let bf = run_single(&p, &cfg(PrefetcherKind::BFetch), INSTS).ipc();
    assert!(sms > base * 1.3, "sms should win milc: {sms} vs {base}");
    assert!(sms > bf, "sms ({sms}) must beat bfetch ({bf}) on milc");
}

#[test]
fn runs_are_bit_deterministic() {
    let p = kernel_by_name("mcf").unwrap().build_small();
    let a = run_single(&p, &cfg(PrefetcherKind::BFetch), INSTS);
    let b = run_single(&p, &cfg(PrefetcherKind::BFetch), INSTS);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.mem.prefetch_issued, b.mem.prefetch_issued);
    assert_eq!(a.mem.prefetch_useful, b.mem.prefetch_useful);
    assert_eq!(a.mispredicts, b.mispredicts);
}

#[test]
fn prefetch_accuracy_feedback_is_consistent() {
    let p = kernel_by_name("libquantum").unwrap().build_small();
    let r = run_single(&p, &cfg(PrefetcherKind::BFetch), INSTS);
    // every scored prefetch was actually issued
    assert!(
        r.mem.prefetch_useful + r.mem.prefetch_useless
            <= r.mem.prefetch_issued - r.mem.prefetch_redundant + 64,
        "scored more prefetches than were issued: {:?}",
        r.mem
    );
}
