//! Robustness under extreme configurations: tiny structures, degenerate
//! thresholds, saturated resources. The system must stay correct (and
//! deterministic) even when every queue and table is under pressure.

use bfetch::core::BFetchConfig;
use bfetch::isa::Program;
use bfetch::sim::{PrefetcherKind, RunResult, SimConfig, SimSession};
use bfetch::workloads::kernel_by_name;

fn run_single(p: &Program, cfg: &SimConfig, insts: u64) -> RunResult {
    SimSession::new(cfg.clone())
        .instructions(insts)
        .run_one(p)
        .expect("run succeeds")
        .into_single()
}

fn base() -> SimConfig {
    let mut c = SimConfig::baseline().with_prefetcher(PrefetcherKind::BFetch);
    c.warmup_insts = 10_000;
    c
}

const INSTS: u64 = 20_000;

#[test]
fn zero_confidence_threshold_walks_to_depth_cap() {
    let p = kernel_by_name("libquantum").unwrap().build_small();
    let mut c = base();
    c.bfetch = BFetchConfig::baseline().with_confidence_threshold(0.0);
    let r = run_single(&p, &c, INSTS);
    let e = r.engine.expect("engine active");
    assert!(e.confidence_stops == 0, "nothing stops at threshold 0");
    assert!(r.ipc() > 0.1);
}

#[test]
fn unit_confidence_threshold_stops_everything() {
    let p = kernel_by_name("libquantum").unwrap().build_small();
    let mut c = base();
    c.bfetch = BFetchConfig::baseline().with_confidence_threshold(1.01);
    let r = run_single(&p, &c, INSTS);
    let e = r.engine.expect("engine active");
    assert_eq!(e.branches_walked, 0, "no walk survives threshold > 1");
    // with the engine muted, behaviour matches the no-prefetch baseline
    let baseline = run_single(
        &p,
        &SimConfig {
            prefetcher: PrefetcherKind::None,
            ..c.clone()
        },
        INSTS,
    );
    assert_eq!(r.cycles, baseline.cycles);
}

#[test]
fn single_entry_tables_still_function() {
    let p = kernel_by_name("astar").unwrap().build_small();
    let mut c = base();
    c.bfetch.brtc_entries = 1;
    c.bfetch.mht_entries = 1;
    c.bfetch.queue_entries = 1;
    c.bfetch.dbr_entries = 1;
    let r = run_single(&p, &c, INSTS);
    assert!(r.ipc() > 0.05);
}

#[test]
fn one_mshr_serializes_but_completes() {
    let p = kernel_by_name("lbm").unwrap().build_small();
    let mut c = base();
    c.l1d_mshrs = 1;
    c.prefetch_buffers = 1;
    let r = run_single(&p, &c, INSTS);
    assert!(r.ipc() > 0.005, "serialized system still makes progress");
}

#[test]
fn tiny_prefetch_queue_overflows_gracefully() {
    let p = kernel_by_name("leslie3d").unwrap().build_small();
    let mut c = base();
    c.bfetch.queue_entries = 2;
    let r = run_single(&p, &c, INSTS);
    let e = r.engine.expect("engine active");
    assert!(e.queue_overflow > 0, "pressure must be visible in stats");
    assert!(r.ipc() > 0.1);
}

#[test]
fn narrow_and_wide_pipelines_run() {
    let p = kernel_by_name("gamess").unwrap().build_small();
    for w in [1usize, 2, 8, 16] {
        let c = base().with_width(w);
        let r = run_single(&p, &c, INSTS);
        assert!(r.ipc() > 0.05, "width {w} gave IPC {}", r.ipc());
        assert!(r.ipc() <= w as f64, "IPC cannot exceed the width");
    }
}

#[test]
fn filter_threshold_extremes() {
    let p = kernel_by_name("soplex").unwrap().build_small();
    // threshold 0: everything passes; threshold 21: everything mutes
    for (t, expect_some) in [(0u8, true), (22u8, false)] {
        let mut c = base();
        c.bfetch.filter_threshold = t;
        let r = run_single(&p, &c, INSTS);
        let e = r.engine.expect("engine active");
        if expect_some {
            assert!(e.candidates > 0);
        } else {
            // only the 1/256 probation trickle can pass
            assert!(
                e.candidates < e.filtered / 16 + 64,
                "muted engine leaked: {e:?}"
            );
        }
    }
}

mod typed_failures {
    //! Injected faults surface as typed errors through the facade:
    //! a frozen core trips the watchdog with a diagnostic snapshot, a
    //! runaway run exhausts the cycle budget, and healthy runs are
    //! untouched by the (default-on) watchdog.

    use bfetch::isa::Program;
    use bfetch::sim::{FaultInjection, RunResult, SimConfig, SimError, SimSession};
    use bfetch::workloads::FAULT_KERNEL;
    use bfetch::workloads::kernel_by_name;

    fn try_run_single(p: &Program, cfg: &SimConfig, insts: u64) -> Result<RunResult, SimError> {
        SimSession::new(cfg.clone())
            .instructions(insts)
            .run_one(p)
            .map(|out| out.into_single())
    }

    fn frozen_cfg() -> SimConfig {
        let mut c = SimConfig::baseline().with_watchdog(2_000);
        c.warmup_insts = 500;
        c.fault = FaultInjection {
            panic_at_insts: 0,
            freeze_at_insts: 1_000,
        };
        c
    }

    #[test]
    fn watchdog_reports_a_snapshot_for_a_frozen_core() {
        let p = FAULT_KERNEL.build_small();
        let err = try_run_single(&p, &frozen_cfg(), 5_000).unwrap_err();
        match &err {
            SimError::Watchdog {
                idle_cycles,
                snapshot,
                ..
            } => {
                assert_eq!(*idle_cycles, 2_000);
                assert_eq!(snapshot.cores.len(), 1);
                assert!(snapshot.cores[0].committed >= 1_000);
                let text = err.to_string();
                assert!(text.contains("watchdog"), "{text}");
                assert!(text.contains("core 0"), "{text}");
            }
            other => panic!("expected watchdog, got {other}"),
        }
    }

    #[test]
    fn cycle_budget_is_the_backstop_when_the_watchdog_is_off() {
        let cfg = frozen_cfg().with_watchdog(0).with_max_cycles(50_000);
        let p = FAULT_KERNEL.build_small();
        match try_run_single(&p, &cfg, 5_000).unwrap_err() {
            SimError::CycleBudget { limit, cycle, .. } => {
                assert_eq!(limit, 50_000);
                assert!(cycle >= limit);
            }
            other => panic!("expected cycle budget, got {other}"),
        }
    }

    #[test]
    fn healthy_runs_pass_the_default_watchdog_untouched() {
        let p = kernel_by_name("libquantum").unwrap().build_small();
        let cfg = SimConfig::baseline();
        assert_eq!(cfg.watchdog_cycles, 1_000_000, "watchdog defaults on");
        let r = try_run_single(&p, &cfg, 20_000).expect("healthy run succeeds");
        // deliberately exercise the deprecated panicking wrapper: it must
        // agree with the fallible SimSession path it now delegates to
        #[allow(deprecated)]
        let again = bfetch::sim::run_single(&p, &cfg, 20_000);
        assert_eq!(r.cycles, again.cycles, "fallible and panicking paths agree");
    }
}

#[test]
fn dram_single_line_interval_queueing() {
    let p = kernel_by_name("libquantum").unwrap().build_small();
    let mut slow = base();
    slow.dram.line_interval = 128; // 1.6 GB/s channel
    let fast = base();
    let rs = run_single(&p, &slow, INSTS);
    let rf = run_single(&p, &fast, INSTS);
    assert!(
        rs.ipc() < rf.ipc(),
        "an 8x slower channel must hurt: {} vs {}",
        rs.ipc(),
        rf.ipc()
    );
}
