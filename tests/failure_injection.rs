//! Robustness under extreme configurations: tiny structures, degenerate
//! thresholds, saturated resources. The system must stay correct (and
//! deterministic) even when every queue and table is under pressure.

use bfetch::core::BFetchConfig;
use bfetch::sim::{run_single, PrefetcherKind, SimConfig};
use bfetch::workloads::kernel_by_name;

fn base() -> SimConfig {
    let mut c = SimConfig::baseline().with_prefetcher(PrefetcherKind::BFetch);
    c.warmup_insts = 10_000;
    c
}

const INSTS: u64 = 20_000;

#[test]
fn zero_confidence_threshold_walks_to_depth_cap() {
    let p = kernel_by_name("libquantum").unwrap().build_small();
    let mut c = base();
    c.bfetch = BFetchConfig::baseline().with_confidence_threshold(0.0);
    let r = run_single(&p, &c, INSTS);
    let e = r.engine.expect("engine active");
    assert!(e.confidence_stops == 0, "nothing stops at threshold 0");
    assert!(r.ipc() > 0.1);
}

#[test]
fn unit_confidence_threshold_stops_everything() {
    let p = kernel_by_name("libquantum").unwrap().build_small();
    let mut c = base();
    c.bfetch = BFetchConfig::baseline().with_confidence_threshold(1.01);
    let r = run_single(&p, &c, INSTS);
    let e = r.engine.expect("engine active");
    assert_eq!(e.branches_walked, 0, "no walk survives threshold > 1");
    // with the engine muted, behaviour matches the no-prefetch baseline
    let baseline = run_single(
        &p,
        &SimConfig {
            prefetcher: PrefetcherKind::None,
            ..c.clone()
        },
        INSTS,
    );
    assert_eq!(r.cycles, baseline.cycles);
}

#[test]
fn single_entry_tables_still_function() {
    let p = kernel_by_name("astar").unwrap().build_small();
    let mut c = base();
    c.bfetch.brtc_entries = 1;
    c.bfetch.mht_entries = 1;
    c.bfetch.queue_entries = 1;
    c.bfetch.dbr_entries = 1;
    let r = run_single(&p, &c, INSTS);
    assert!(r.ipc() > 0.05);
}

#[test]
fn one_mshr_serializes_but_completes() {
    let p = kernel_by_name("lbm").unwrap().build_small();
    let mut c = base();
    c.l1d_mshrs = 1;
    c.prefetch_buffers = 1;
    let r = run_single(&p, &c, INSTS);
    assert!(r.ipc() > 0.005, "serialized system still makes progress");
}

#[test]
fn tiny_prefetch_queue_overflows_gracefully() {
    let p = kernel_by_name("leslie3d").unwrap().build_small();
    let mut c = base();
    c.bfetch.queue_entries = 2;
    let r = run_single(&p, &c, INSTS);
    let e = r.engine.expect("engine active");
    assert!(e.queue_overflow > 0, "pressure must be visible in stats");
    assert!(r.ipc() > 0.1);
}

#[test]
fn narrow_and_wide_pipelines_run() {
    let p = kernel_by_name("gamess").unwrap().build_small();
    for w in [1usize, 2, 8, 16] {
        let c = base().with_width(w);
        let r = run_single(&p, &c, INSTS);
        assert!(r.ipc() > 0.05, "width {w} gave IPC {}", r.ipc());
        assert!(r.ipc() <= w as f64, "IPC cannot exceed the width");
    }
}

#[test]
fn filter_threshold_extremes() {
    let p = kernel_by_name("soplex").unwrap().build_small();
    // threshold 0: everything passes; threshold 21: everything mutes
    for (t, expect_some) in [(0u8, true), (22u8, false)] {
        let mut c = base();
        c.bfetch.filter_threshold = t;
        let r = run_single(&p, &c, INSTS);
        let e = r.engine.expect("engine active");
        if expect_some {
            assert!(e.candidates > 0);
        } else {
            // only the 1/256 probation trickle can pass
            assert!(
                e.candidates < e.filtered / 16 + 64,
                "muted engine leaked: {e:?}"
            );
        }
    }
}

#[test]
fn dram_single_line_interval_queueing() {
    let p = kernel_by_name("libquantum").unwrap().build_small();
    let mut slow = base();
    slow.dram.line_interval = 128; // 1.6 GB/s channel
    let fast = base();
    let rs = run_single(&p, &slow, INSTS);
    let rf = run_single(&p, &fast, INSTS);
    assert!(
        rs.ipc() < rf.ipc(),
        "an 8x slower channel must hurt: {} vs {}",
        rs.ipc(),
        rf.ipc()
    );
}
