//! Golden functional-trace regression tests: the committed
//! (PC, EA, direction) stream of every kernel is hashed and pinned, so any
//! unintended change to the ISA semantics, the kernel generators or the
//! deterministic RNG plumbing shows up immediately.
//!
//! If a kernel is changed *on purpose*, update its constant with the value
//! printed by the failing assertion.

use bfetch::isa::ArchState;
use bfetch::workloads::kernel_by_name;

/// FNV-1a over the execution stream.
fn trace_hash(name: &str, steps: u64) -> u64 {
    let p = kernel_by_name(name).expect("kernel").build_small();
    let mut s = ArchState::new(&p);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut fold = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    let mut n = 0;
    while n < steps {
        let Some(info) = s.step(&p) else {
            s.restart();
            continue;
        };
        fold(info.idx as u64);
        if let Some(ea) = info.ea {
            fold(ea);
        }
        if info.inst.is_cond_branch() {
            fold(info.taken as u64);
        }
        n += 1;
    }
    h
}

macro_rules! golden {
    ($($test:ident, $name:literal, $hash:literal;)*) => {
        $(
            #[test]
            fn $test() {
                let h = trace_hash($name, 50_000);
                assert_eq!(
                    h, $hash,
                    "{} functional trace changed: got {h:#x} — if intended, update the constant",
                    $name
                );
            }
        )*
    };
}

// Values pinned from the current deterministic build.
golden! {
    golden_libquantum, "libquantum", 0xcfab1b5216c06a74;
    golden_mcf, "mcf", 0x8e93b542832480d8;
    golden_milc, "milc", 0xe14b5122b2a5d9ec;
    golden_astar, "astar", 0xace8a2fc7d10a82;
    golden_leslie3d, "leslie3d", 0xbb0d9f6be2f34fe7;
    golden_soplex, "soplex", 0xa501a6fa9acdb2f8;
    golden_sjeng, "sjeng", 0xd6caf0461483b2f5;
    golden_bzip2, "bzip2", 0x55778ea0baeef938;
}

/// Regenerates the table above (run with `--ignored --nocapture`).
#[test]
#[ignore]
fn print_golden_hashes() {
    for name in [
        "libquantum",
        "mcf",
        "milc",
        "astar",
        "leslie3d",
        "soplex",
        "sjeng",
        "bzip2",
    ] {
        println!(
            "    golden_{name}, \"{name}\", {:#x};",
            trace_hash(name, 50_000)
        );
    }
}
