//! Multiprogrammed CMP integration tests (shared LLC + DRAM contention).

use bfetch::isa::Program;
use bfetch::sim::{PrefetcherKind, RunResult, SimConfig, SimSession};
use bfetch::stats::weighted_speedup;
use bfetch::workloads::{kernel_by_name, select_mixes};

fn run_single(p: &Program, cfg: &SimConfig, insts: u64) -> RunResult {
    SimSession::new(cfg.clone())
        .instructions(insts)
        .run_one(p)
        .expect("run succeeds")
        .into_single()
}

fn run_multi(programs: &[Program], cfg: &SimConfig, insts: u64) -> Vec<RunResult> {
    SimSession::new(cfg.clone())
        .instructions(insts)
        .run(programs)
        .expect("run succeeds")
        .results
}

fn cfg(kind: PrefetcherKind) -> SimConfig {
    let mut c = SimConfig::baseline().with_prefetcher(kind);
    c.warmup_insts = 15_000;
    c
}

const INSTS: u64 = 30_000;

#[test]
fn contention_slows_corunners() {
    let p = kernel_by_name("lbm").unwrap().build_small();
    let solo = run_single(&p, &cfg(PrefetcherKind::None), INSTS).ipc();
    let duo = run_multi(&[p.clone(), p], &cfg(PrefetcherKind::None), INSTS);
    for r in &duo {
        assert!(
            r.ipc() < solo,
            "memory-bound co-runners must contend: {} !< {solo}",
            r.ipc()
        );
    }
}

#[test]
fn weighted_speedup_bounded_by_core_count() {
    let mix = &select_mixes(2, 1)[0];
    let programs: Vec<_> = mix.members.iter().map(|k| k.build_small()).collect();
    let solo: Vec<f64> = programs
        .iter()
        .map(|p| run_single(p, &cfg(PrefetcherKind::None), INSTS).ipc())
        .collect();
    let multi = run_multi(&programs, &cfg(PrefetcherKind::None), INSTS);
    let pairs: Vec<(f64, f64)> = multi
        .iter()
        .zip(solo.iter())
        .map(|(r, &s)| (r.ipc(), s))
        .collect();
    let ws = weighted_speedup(&pairs);
    assert!(ws > 0.5 && ws <= 2.05, "weighted speedup {ws} out of range");
}

#[test]
fn four_core_mix_runs_to_completion() {
    let mix = &select_mixes(4, 1)[0];
    let programs: Vec<_> = mix.members.iter().map(|k| k.build_small()).collect();
    let results = run_multi(&programs, &cfg(PrefetcherKind::BFetch), 20_000);
    assert_eq!(results.len(), 4);
    for r in &results {
        assert!(r.instructions >= 20_000);
        assert!(r.ipc() > 0.01);
    }
}

#[test]
fn prefetching_helps_under_contention() {
    // the mechanism behind Figures 9/10: accurate prefetching raises
    // weighted speedup even when the LLC and DRAM are shared
    let mix = &select_mixes(2, 1)[0];
    let programs: Vec<_> = mix.members.iter().map(|k| k.build_small()).collect();
    let mut ws = Vec::new();
    for kind in [PrefetcherKind::None, PrefetcherKind::BFetch] {
        let solo: Vec<f64> = programs
            .iter()
            .map(|p| run_single(p, &cfg(kind), INSTS).ipc())
            .collect();
        let multi = run_multi(&programs, &cfg(kind), INSTS);
        let pairs: Vec<(f64, f64)> = multi
            .iter()
            .zip(solo.iter())
            .map(|(r, &s)| (r.ipc(), s))
            .collect();
        ws.push(weighted_speedup(&pairs));
    }
    // normalized weighted speedup: the paper reports ~1.3x for B-Fetch;
    // at test scale we only require a solid improvement
    assert!(
        ws[1] / ws[0] > 0.95,
        "bfetch should not collapse under contention: {:?}",
        ws
    );
}

#[test]
fn per_core_results_are_labelled() {
    let a = kernel_by_name("astar").unwrap().build_small();
    let b = kernel_by_name("gamess").unwrap().build_small();
    let results = run_multi(&[a, b], &cfg(PrefetcherKind::None), 20_000);
    assert_eq!(results[0].workload, "astar");
    assert_eq!(results[1].workload, "gamess");
}
