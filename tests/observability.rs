//! End-to-end checks of the observability layer: the metrics derived from
//! the trace-event stream must agree with the memory system's own
//! independently maintained counters, and enabling tracing must not
//! perturb simulation results.

use bfetch::isa::{Program, ProgramBuilder, Reg};
use bfetch::sim::{PrefetcherKind, RunResult, SimConfig, SimSession};
use bfetch::stats::LifecycleCounts;
use bfetch::workloads::kernel_by_name;

fn run_single(p: &Program, cfg: &SimConfig, insts: u64) -> RunResult {
    SimSession::new(cfg.clone())
        .instructions(insts)
        .run_one(p)
        .expect("run succeeds")
        .into_single()
}

struct Traced {
    results: Vec<RunResult>,
    lifecycle: Vec<LifecycleCounts>,
}

fn run_single_traced(p: &Program, cfg: &SimConfig, insts: u64) -> Traced {
    let out = SimSession::new(cfg.clone())
        .trace(true)
        .instructions(insts)
        .run_one(p)
        .expect("run succeeds");
    let trace = out.trace.expect("trace requested");
    Traced {
        results: out.results,
        lifecycle: trace.lifecycle,
    }
}

/// A deterministic unit-stride streaming loop: one load per 64 B line with
/// enough per-line compute that prefetching genuinely hides latency.
fn stride_kernel(lines: u64) -> Program {
    let mut b = ProgramBuilder::new("stride-obs");
    let base = 0x200_0000u64;
    b.li(Reg::R1, base as i64);
    b.li(Reg::R2, (base + lines * 64) as i64);
    let top = b.label();
    b.bind(top);
    b.load(Reg::R4, Reg::R1, 0);
    for _ in 0..12 {
        b.add(Reg::R5, Reg::R5, Reg::R4);
        b.xor(Reg::R6, Reg::R6, Reg::R5);
    }
    b.addi(Reg::R1, Reg::R1, 64);
    b.blt(Reg::R1, Reg::R2, top);
    b.halt();
    b.finish()
}

fn cfg(kind: PrefetcherKind) -> SimConfig {
    let mut c = SimConfig::baseline().with_prefetcher(kind);
    c.warmup_insts = 2_000;
    c
}

#[test]
fn trace_metrics_match_hand_derived_values_on_stride_kernel() {
    let p = stride_kernel(16 * 1024);
    let insts = 15_000;

    // Two independent counting paths over the same deterministic run: the
    // memory system's aggregate MemStats (from an *untraced* run) and the
    // per-event lifecycle tallies (from a traced one).
    let plain = run_single(&p, &cfg(PrefetcherKind::BFetch), insts);
    let traced = run_single_traced(&p, &cfg(PrefetcherKind::BFetch), insts);
    let lc = traced.lifecycle[0];
    let m = lc.metrics();

    // Hand-derive accuracy and coverage from the aggregate counters using
    // the DESIGN.md definitions, then demand exact agreement.
    let useful = plain.mem.prefetch_useful as f64;
    let hand_accuracy = useful / (useful + plain.mem.prefetch_useless as f64);
    let uncovered = (plain.mem.l1d_misses - plain.mem.prefetch_late) as f64;
    let hand_coverage = useful / (useful + uncovered);
    assert_eq!(m.accuracy, hand_accuracy, "accuracy definitions diverge");
    assert_eq!(m.coverage, hand_coverage, "coverage definitions diverge");

    // A streaming loop with a predictable branch is B-Fetch's best case:
    // the metrics should show a genuinely effective prefetcher.
    assert!(m.accuracy > 0.9, "stride accuracy {:.3} too low", m.accuracy);
    assert!(m.coverage > 0.5, "stride coverage {:.3} too low", m.coverage);
    assert!(lc.useful() > 100, "too few useful prefetches: {lc:?}");
}

#[test]
fn enabling_tracing_does_not_perturb_results() {
    for name in ["mcf", "libquantum"] {
        let p = kernel_by_name(name).unwrap().build_small();
        let plain = run_single(&p, &cfg(PrefetcherKind::BFetch), 10_000);
        let traced = run_single_traced(&p, &cfg(PrefetcherKind::BFetch), 10_000);
        assert_eq!(plain, traced.results[0], "tracing perturbed {name}");
    }
}

#[test]
fn registry_agrees_with_result_counters_end_to_end() {
    let p = kernel_by_name("mcf").unwrap().build_small();
    let r = run_single(&p, &cfg(PrefetcherKind::BFetch), 10_000);
    let reg = r.registry();
    assert_eq!(reg.get("core.instructions"), r.instructions);
    assert_eq!(reg.get("prefetch.useful"), r.mem.prefetch_useful);
    assert_eq!(reg.get("dram.reqs"), r.mem.dram_reqs);
    // the hierarchical prefix view sees exactly the prefetch counters
    let prefetch: Vec<&str> = reg.with_prefix("prefetch.").map(|(k, _)| k).collect();
    assert!(prefetch.contains(&"prefetch.issued"));
    assert!(prefetch.iter().all(|k| k.starts_with("prefetch.")));
}
